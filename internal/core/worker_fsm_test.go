package core

import (
	"testing"

	"s3asim/internal/romio"
)

// TestWorkerEnginesEquivalent pins the tentpole invariant of the FSM worker
// engine: forcing goroutine workers and forcing FSM workers must produce
// byte-identical reports AND identical calendar-event counts, across paths
// the golden matrix does not reach — the MW sync-token wait, the initial
// database load, the query-segmentation re-read, hybrid query groups, the
// list-sync collective, and sieved individual writes.
func TestWorkerEnginesEquivalent(t *testing.T) {
	variants := []struct {
		name   string
		mutate func(c *Config)
	}{
		{"WW-List_sync", func(c *Config) { c.Strategy = WWList; c.QuerySync = true }},
		{"MW_sync_token", func(c *Config) { c.Strategy = MW; c.QuerySync = true }},
		{"WW-Coll_two-phase", func(c *Config) { c.Strategy = WWColl }},
		{"WW-Coll_list-sync", func(c *Config) {
			c.Strategy = WWColl
			c.CollMethod = romio.ListSync
		}},
		{"WW-POSIX_db-load", func(c *Config) {
			c.Strategy = WWPosix
			c.DatabaseBytes = 64 << 20
		}},
		{"MW_query-seg_reread", func(c *Config) {
			c.Strategy = MW
			c.Segmentation = QuerySeg
			c.DatabaseBytes = 1 << 20
			c.WorkerMemoryBytes = 512 << 10
		}},
		{"WW-List_query-groups", func(c *Config) { c.Strategy = WWList; c.QueryGroups = 2 }},
		{"WW-List_sieve", func(c *Config) {
			c.Strategy = WWList
			c.OverrideIndMethod = true
			c.IndMethod = romio.DataSieve
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			base := goldenConfig()
			v.mutate(&base)

			gor := base
			gor.ProcModel = ProcGoroutine
			fsm := base
			fsm.ProcModel = ProcFSM

			repG := mustRun(t, gor)
			repF := mustRun(t, fsm)
			if fg, ff := fingerprint(repG), fingerprint(repF); fg != ff {
				t.Errorf("engines diverged:\n goroutine %s\n fsm       %s", fg, ff)
			}
			if repG.Events != repF.Events {
				t.Errorf("calendar events diverged: goroutine %d, fsm %d",
					repG.Events, repF.Events)
			}
		})
	}
}

// TestProcFSMRejectsResilient pins the validation rule: the recovery
// protocol has no FSM port, so forcing ProcFSM on a resilient run is a
// configuration error rather than a silent fallback.
func TestProcFSMRejectsResilient(t *testing.T) {
	cfg := goldenConfig()
	cfg.Resilient = true
	cfg.ProcModel = ProcFSM
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected a validation error for ProcFSM + resilient")
	}
	cfg.ProcModel = ProcAuto
	if _, err := Run(cfg); err != nil {
		t.Fatalf("ProcAuto + resilient should fall back to goroutines: %v", err)
	}
}
