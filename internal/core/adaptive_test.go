package core

import (
	"reflect"
	"testing"

	"s3asim/internal/causal"
	"s3asim/internal/des"
	"s3asim/internal/stats"
)

// adaptiveConfig is tinyConfig with enough queries for the controller to get
// past its bootstrap phase and a bimodal size distribution, so no single arm
// is best everywhere.
func adaptiveConfig() Config {
	cfg := tinyConfig()
	cfg.Workload.NumQueries = 24
	cfg.Workload.QueryHist = stats.MustBoxHistogram([]stats.Bin{
		{Min: 60, Max: 100, Weight: 1},
		{Min: 3000, Max: 5000, Weight: 1},
	})
	cfg.Adaptive = &AdaptiveConfig{}
	return cfg
}

func TestAdaptiveRunVerifiesImage(t *testing.T) {
	for _, qs := range []bool{false, true} {
		cfg := adaptiveConfig()
		cfg.QuerySync = qs
		rep := mustRun(t, cfg)
		if !rep.Verified {
			t.Fatalf("sync=%v: image not verified", qs)
		}
		if rep.OverlappedBytes != 0 {
			t.Fatalf("sync=%v: %d overlapped bytes", qs, rep.OverlappedBytes)
		}
		ad := rep.Adaptive
		if ad == nil {
			t.Fatal("Report.Adaptive missing")
		}
		if len(ad.Arms) != 3 {
			t.Fatalf("default arm set has %d arms", len(ad.Arms))
		}
		// With the device-model prior there is no forced bootstrap: an arm
		// priced clearly worst may legitimately never be assigned. Every
		// batch must still carry exactly one decision.
		var assigned int64
		for _, n := range ad.Assigned {
			assigned += n
		}
		if want := int64(cfg.Workload.NumQueries); assigned != want {
			t.Fatalf("assigned %d batches, want %d", assigned, want)
		}
		if len(ad.BatchArms) != cfg.Workload.NumQueries {
			t.Fatalf("BatchArms has %d entries", len(ad.BatchArms))
		}
		for b, arm := range ad.BatchArms {
			if arm < 0 || arm >= len(ad.Arms) {
				t.Fatalf("batch %d has no decided arm (%d)", b, arm)
			}
		}
	}
}

func TestAdaptiveEnginesEquivalent(t *testing.T) {
	// The goroutine and FSM worker engines must produce the identical run:
	// decisions happen on the master, observations on deterministic flush
	// stamps, so every controller input is engine-independent.
	run := func(pm ProcModel) *Report {
		cfg := adaptiveConfig()
		cfg.ProcModel = pm
		return mustRun(t, cfg)
	}
	gor := run(ProcGoroutine)
	fsm := run(ProcFSM)
	if gor.Overall != fsm.Overall {
		t.Fatalf("overall differs: goroutine %v, fsm %v", gor.Overall, fsm.Overall)
	}
	if !reflect.DeepEqual(gor.BatchFlushTimes, fsm.BatchFlushTimes) {
		t.Fatal("flush times differ between engines")
	}
	if !reflect.DeepEqual(gor.Adaptive, fsm.Adaptive) {
		t.Fatalf("adaptive reports differ:\n goroutine: %+v\n fsm: %+v",
			gor.Adaptive, fsm.Adaptive)
	}
	if gor.Events != fsm.Events || gor.Messages != fsm.Messages {
		t.Fatalf("event/message counts differ: %d/%d vs %d/%d",
			gor.Events, gor.Messages, fsm.Events, fsm.Messages)
	}
}

func TestAdaptiveSingleArmUsesThatArm(t *testing.T) {
	for _, s := range []Strategy{MW, WWPosix, WWList, WWColl} {
		cfg := adaptiveConfig()
		cfg.Adaptive = &AdaptiveConfig{Strategies: []Strategy{s}}
		rep := mustRun(t, cfg)
		if !rep.Verified {
			t.Fatalf("%v: image not verified", s)
		}
		for b, arm := range rep.Adaptive.BatchArms {
			if arm != 0 {
				t.Fatalf("%v: batch %d assigned arm %d", s, b, arm)
			}
		}
	}
}

func TestAdaptiveCausalAttributionFlows(t *testing.T) {
	cfg := adaptiveConfig()
	cfg.Causal = causal.NewRecorder()
	rep := mustRun(t, cfg)
	if err := rep.Attribution.Check(); err != nil {
		t.Fatalf("attribution conservation: %v", err)
	}
	var attr des.Time
	for _, bd := range rep.Adaptive.ArmAttr {
		attr += bd.Total()
	}
	if attr <= 0 {
		t.Fatal("no per-arm causal attribution accumulated")
	}
	// The same config without a recorder must produce the identical schedule
	// (the recorder is passive) and zero attribution.
	plain := mustRun(t, adaptiveConfig())
	if plain.Overall != rep.Overall {
		t.Fatalf("causal recorder perturbed the run: %v vs %v", rep.Overall, plain.Overall)
	}
	for _, bd := range plain.Adaptive.ArmAttr {
		if bd.Total() != 0 {
			t.Fatal("attribution without a recorder")
		}
	}
}

func TestAdaptiveHintSearchRuns(t *testing.T) {
	cfg := adaptiveConfig()
	cfg.Workload.NumQueries = 48
	cfg.Adaptive = &AdaptiveConfig{
		Strategies: []Strategy{WWColl},
		EpochLen:   4,
		TuneCB:     true,
	}
	rep := mustRun(t, cfg)
	ad := rep.Adaptive
	if ad.Epochs == 0 {
		t.Fatal("hint search never closed an epoch")
	}
	if ad.ProbeEpochs == 0 && !ad.Converged {
		t.Fatal("hint search neither probed nor converged")
	}
	if n := len(rep.Workers); ad.FinalHints.CBNodes > n {
		t.Fatalf("final cb_nodes %d exceeds worker count %d", ad.FinalHints.CBNodes, n)
	}
}

func TestAdaptiveMetricsEmitted(t *testing.T) {
	cfg := adaptiveConfig()
	rep := mustRun(t, cfg)
	c := rep.Metrics.Counters
	// The prior may keep a dominated arm at zero assignments (its counter is
	// then never emitted), but the per-arm counters must still account for
	// every batch.
	var total int64
	for _, name := range []string{"adapt.assigned.mw", "adapt.assigned.ww-list", "adapt.assigned.ww-coll"} {
		total += c[name]
	}
	if total != int64(cfg.Workload.NumQueries) {
		t.Fatalf("assigned counters sum to %d, want %d", total, cfg.Workload.NumQueries)
	}
	if _, ok := rep.Metrics.Gauges["adapt.epochs"]; !ok {
		t.Fatal("adapt.epochs gauge missing")
	}
}

func TestAdaptiveValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Resilient = true },
		func(c *Config) { c.QueryGroups = 2; c.Procs = 8 },
		func(c *Config) { c.Adaptive.Strategies = []Strategy{WWList, WWList} },
		func(c *Config) { c.Adaptive.Strategies = []Strategy{Strategy(9)} },
		func(c *Config) { c.Adaptive.Gamma = 1.5 },
		func(c *Config) { c.Adaptive.Hysteresis = -1 },
	}
	for i, mut := range bad {
		cfg := adaptiveConfig()
		mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad adaptive config %d accepted", i)
		}
	}
}

func TestConfigValidateRejectsBadHints(t *testing.T) {
	cfg := tinyConfig()
	cfg.CBNodes = -3
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative CBNodes accepted")
	}
}
