package core

import (
	"fmt"
	goruntime "runtime"
	"sync/atomic"
	"testing"
	"time"

	"s3asim/internal/search"
)

// TestScaleWorkers10kSmoke runs one 10k-rank scale cell end to end; CI
// additionally runs it under -race, shaking the FSM engine's kernel paths
// (park/resume, pooled waiters, drain/offset distribution at fan-out) at a
// scale the golden matrix never reaches. -short skips it — it is a
// multi-second simulation.
func TestScaleWorkers10kSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second 10k-rank cell")
	}
	cfg := ScaleConfig(10_000)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events == 0 || rep.Overall <= 0 {
		t.Fatalf("degenerate report: events=%d overall=%v", rep.Events, rep.Overall)
	}
	if rep.FileCoverage <= 0 {
		t.Fatalf("no output written: coverage=%d", rep.FileCoverage)
	}
}

// BenchmarkScaleWorkers measures the engine at rank counts far beyond the
// paper's 128-process ceiling: 1k, 10k, and 100k ranks over the bounded
// ScaleConfig workload. Reported metrics:
//
//	events/sec  — calendar throughput (virtual events per wall second)
//	memB/rank   — peak sampled memory (heap + goroutine stacks) divided
//	              by rank count, the per-rank footprint the FSM worker
//	              engine exists to shrink (acceptance: 100k ranks within
//	              ~2 GB). Stack memory is counted because under
//	              ProcGoroutine it is the dominant per-rank cost and it
//	              does not appear in HeapAlloc.
//
// The workload is generated once outside the timed region, so the numbers
// are the simulation engine's alone. Compare ProcModel effects with
// -benchtime against a copy run under ProcGoroutine.
func BenchmarkScaleWorkers(b *testing.B) {
	for _, ranks := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			cfg := ScaleConfig(ranks)
			wl := search.Generate(cfg.EffectiveWorkload())
			b.ReportAllocs()

			// Peak-memory sampler: HeapAlloc+StackSys polled on a short
			// ticker. An upper bound on live memory (garbage counts until
			// a GC), which is the honest figure for "does the cell fit".
			var peak atomic.Uint64
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				tick := time.NewTicker(10 * time.Millisecond)
				defer tick.Stop()
				var ms goruntime.MemStats
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
						goruntime.ReadMemStats(&ms)
						mem := ms.HeapAlloc + ms.StackSys
						for {
							old := peak.Load()
							if mem <= old || peak.CompareAndSwap(old, mem) {
								break
							}
						}
					}
				}
			}()

			var events uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := RunWithWorkload(cfg, wl)
				if err != nil {
					b.Fatal(err)
				}
				events += rep.Events
			}
			b.StopTimer()
			close(stop)
			<-done

			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
			b.ReportMetric(float64(peak.Load())/float64(ranks), "memB/rank")
		})
	}
}
