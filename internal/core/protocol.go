package core

import (
	"s3asim/internal/romio"
	"s3asim/internal/search"
)

// MPI tags of the S3aSim protocol. The collective-I/O layer uses tags above
// 1<<20; these stay well below. Tags 7–9 exist only in the resilient
// protocol (DESIGN.md §9); the original protocol never sends them.
const (
	tagWorkRequest = 2 // worker -> master: request for work
	tagWorkReply   = 3 // master -> worker: (query, fragment) or no-more-work
	tagScores      = 4 // worker -> master: scores (and results under MW)
	tagOffsets     = 5 // master -> worker: offset list for a completed batch
	tagSyncToken   = 6 // master -> worker: batch written (MW + query sync)
	tagWriteAck    = 7 // worker -> master: batch wave durably written
	tagControl     = 8 // master -> worker: nudge (work available) or shutdown
	tagFin         = 9 // worker -> master: final ack before orderly exit
)

// Small-message wire sizes (bytes).
const (
	configMsgBytes  = 64
	requestMsgBytes = 16
	replyMsgBytes   = 16
	offsetHdrBytes  = 16
	tokenMsgBytes   = 8
	ackMsgBytes     = 16
	ctlMsgBytes     = 8
	finMsgBytes     = 8
	offsetPerResult = 8 // one 64-bit offset per result (paper §2.2)
)

// droppableTag reports whether a tag belongs to the retry-protected
// request/response plane — the only messages the fault layer's Drop events
// may lose. Work requests and replies are covered by the worker's resend
// loop; scores by the master's task lease. Everything else (offset lists,
// tokens, acks, control, fin, collective exchanges) is modeled as reliable
// transport: offset/ack losses are instead expressed as crashed endpoints,
// which the write-lease machinery recovers.
func droppableTag(tag int) bool {
	return tag == tagWorkRequest || tag == tagWorkReply || tag == tagScores
}

// delayableTag bounds the fault layer's Delay events to the application's
// point-to-point plane (collective-exchange tags live above 1<<20 and keep
// their modeled timing).
func delayableTag(tag int) bool { return tag < 1<<20 }

// task identifies a (query, fragment) search unit. Gate is used only by
// serving runs (Config.Serve): the number of flush rounds the master had
// initiated when it dispatched the task, which is the WW-Coll run-ahead
// gate — the worker must have handled that many collective rounds before it
// may start computing. Closed-batch runs leave it zero and derive the gate
// from the query index instead (batches flush strictly in order there).
// Strat is the query's write strategy under adaptive I/O (Config.Adaptive):
// the controller stamps it when the first fragment is dispatched, and the
// worker routes its local merge, wire accounting, and WW-Coll gating on it.
// Fixed-strategy runs leave it zero and consult Config.Strategy instead.
type task struct {
	Q, F  int
	Gate  int
	Strat Strategy
}

// scoreMsg is a worker's report for one completed task.
type scoreMsg struct {
	Task        task
	Count       int   // results produced
	ResultBytes int64 // total result payload bytes
}

// offsetMsg carries a worker's write placements for one flushed batch.
// Empty placements still require an (empty) message so every worker can
// track batch progress — and, under WW-Coll, join the collective round.
// Wave, Inc, Fallback, and Sync are resilient-protocol fields (zero in the
// original protocol): Wave 0 is the initial flush, higher waves re-send
// recovered placements; Inc pins the message to the addressee's incarnation
// (a restarted worker ignores waves addressed to its dead predecessor);
// Fallback forces individual list I/O instead of the collective round;
// Sync marks the addressee as a member of this batch's barrier epoch.
// Strat and Hints are adaptive-I/O fields (Config.Adaptive): the batch's
// decided write strategy and the ROMIO hint vector to write it with — under
// adaptive I/O every batch sends offset lists, including MW batches, whose
// empty message (sent after the master's own write+sync) is the batch
// tracker and, with QuerySync, the barrier trigger. Zero otherwise.
type offsetMsg struct {
	Batch      int
	Placements []search.Result
	Wave       int
	Inc        int
	Fallback   bool
	Sync       bool
	Strat      Strategy
	Hints      romio.Hints
}

// workReqMsg is the resilient work request: Seq increments per new request
// (resends repeat it), Inc is the worker's incarnation so the master can
// detect a restart whose death it never observed.
type workReqMsg struct {
	Seq int
	Inc int
}

// workReplyMsg is the resilient work reply. Flushed tells the worker how
// many initial batch waves were sent before it joined — the base for the
// WW-Coll run-ahead gate after a restart.
type workReplyMsg struct {
	Seq     int
	Has     bool // false: no work right now, wait for a nudge
	T       task
	Flushed int
}

// tokMsg is the resilient MW sync token (the original protocol sends a bare
// batch index).
type tokMsg struct {
	Batch int
	Inc   int
	Sync  bool
}

// ackMsg acknowledges that one (batch, wave) offset list was durably
// written by the sending worker.
type ackMsg struct {
	Batch int
	Wave  int
	Bytes int64
}

// ctlMsg is the master's control plane: a nudge (requeued work is
// available) or an orderly-shutdown order.
type ctlMsg struct {
	Shutdown bool
}
