package core

import "s3asim/internal/search"

// MPI tags of the S3aSim protocol. The collective-I/O layer uses tags above
// 1<<20; these stay well below.
const (
	tagWorkRequest = 2 // worker -> master: request for work
	tagWorkReply   = 3 // master -> worker: (query, fragment) or no-more-work
	tagScores      = 4 // worker -> master: scores (and results under MW)
	tagOffsets     = 5 // master -> worker: offset list for a completed batch
	tagSyncToken   = 6 // master -> worker: batch written (MW + query sync)
)

// Small-message wire sizes (bytes).
const (
	configMsgBytes  = 64
	requestMsgBytes = 16
	replyMsgBytes   = 16
	offsetHdrBytes  = 16
	tokenMsgBytes   = 8
	offsetPerResult = 8 // one 64-bit offset per result (paper §2.2)
)

// task identifies a (query, fragment) search unit.
type task struct {
	Q, F int
}

// scoreMsg is a worker's report for one completed task.
type scoreMsg struct {
	Task        task
	Count       int   // results produced
	ResultBytes int64 // total result payload bytes
}

// offsetMsg carries a worker's write placements for one flushed batch.
// Empty placements still require an (empty) message so every worker can
// track batch progress — and, under WW-Coll, join the collective round.
type offsetMsg struct {
	Batch      int
	Placements []search.Result
}
