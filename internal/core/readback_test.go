package core

import (
	"strings"
	"testing"

	"s3asim/internal/fault"
	"s3asim/internal/romio"
)

// readbackConfig is tinyConfig with the verified read path enabled:
// one in-run readback per flushed batch plus the post-run sweep.
func readbackConfig(s Strategy, m romio.Method) Config {
	cfg := tinyConfig()
	cfg.Strategy = s
	cfg.Readback = &ReadbackConfig{Method: m, InRunReads: 1, PostRun: true}
	return cfg
}

func TestReadbackAllStrategiesAndMethods(t *testing.T) {
	for _, s := range Strategies {
		for _, m := range []romio.Method{romio.Posix, romio.ListIO, romio.DataSieve} {
			cfg := readbackConfig(s, m)
			rep := mustRun(t, cfg)
			if !rep.Verified {
				t.Fatalf("%v/%v: image not verified", s, m)
			}
			if rep.ReadbackMismatches != 0 {
				t.Fatalf("%v/%v: %d readback mismatches", s, m, rep.ReadbackMismatches)
			}
			if rep.ReadbackReads == 0 || rep.ReadbackExtents == 0 || rep.ReadbackBytes == 0 {
				t.Fatalf("%v/%v: no readback activity: reads=%d extents=%d bytes=%d",
					s, m, rep.ReadbackReads, rep.ReadbackExtents, rep.ReadbackBytes)
			}
			// Post-run reads every result extent exactly once, so the bytes
			// read back must be at least one full pass over the output.
			if rep.ReadbackBytes < rep.OutputBytes {
				t.Fatalf("%v/%v: read back %d bytes < output %d",
					s, m, rep.ReadbackBytes, rep.OutputBytes)
			}
		}
	}
}

func TestReadbackCollective(t *testing.T) {
	for _, cm := range []romio.CollMethod{romio.TwoPhase, romio.ListSync} {
		cfg := readbackConfig(WWColl, romio.ListIO)
		cfg.CollMethod = cm
		cfg.Readback.Collective = true
		rep := mustRun(t, cfg)
		if rep.ReadbackMismatches != 0 || rep.ReadbackReads == 0 {
			t.Fatalf("%v: mismatches=%d reads=%d",
				cm, rep.ReadbackMismatches, rep.ReadbackReads)
		}
	}
}

// TestReadbackDetectsSilentWriteDrop pins the reason the read path exists:
// a write acknowledged by the file system but silently zeroed keeps every
// offset-level invariant (coverage, size, no overlap) and is caught only by
// content verification.
func TestReadbackDetectsSilentWriteDrop(t *testing.T) {
	for _, s := range Strategies {
		cfg := readbackConfig(s, romio.Posix)
		dropped := false
		cfg.TestWriteDropper = func(off, n int64) bool {
			if dropped || n == 0 {
				return false
			}
			dropped = true
			return true
		}
		rep, err := Run(cfg)
		if err == nil || !strings.Contains(err.Error(), "readback verification failed") {
			t.Fatalf("%v: silent drop not detected, err=%v", s, err)
		}
		if rep == nil || rep.ReadbackMismatches == 0 {
			t.Fatalf("%v: report carries no mismatches", s)
		}
		// Offset bookkeeping must NOT have noticed: the drop is silent.
		if !dropped {
			t.Fatalf("%v: dropper never fired", s)
		}
	}
}

// TestReadbackFSMMatchesGoroutine pins engine parity: the FSM process model
// must execute the identical readback event sequence as goroutine workers.
func TestReadbackFSMMatchesGoroutine(t *testing.T) {
	for _, s := range Strategies {
		for _, coll := range []bool{false, true} {
			if coll && s != WWColl {
				continue
			}
			a := readbackConfig(s, romio.ListIO)
			a.Readback.Collective = coll
			a.ProcModel = ProcGoroutine
			b := a
			b.ProcModel = ProcFSM
			ra := mustRun(t, a)
			rb := mustRun(t, b)
			if ra.Overall != rb.Overall || ra.Events != rb.Events ||
				ra.ReadbackReads != rb.ReadbackReads ||
				ra.ReadbackExtents != rb.ReadbackExtents ||
				ra.ReadbackBytes != rb.ReadbackBytes {
				t.Fatalf("%v coll=%v: FSM diverged: goroutine (%v,%d,%d,%d,%d) vs FSM (%v,%d,%d,%d,%d)",
					s, coll,
					ra.Overall, ra.Events, ra.ReadbackReads, ra.ReadbackExtents, ra.ReadbackBytes,
					rb.Overall, rb.Events, rb.ReadbackReads, rb.ReadbackExtents, rb.ReadbackBytes)
			}
		}
	}
}

// TestReadbackResilient runs the verified read path under the recovery
// protocol with worker crashes: exactly-once replay must leave zero content
// mismatches.
func TestReadbackResilient(t *testing.T) {
	plan, err := fault.Parse("crash@3ms:rank=2,restart=10ms")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Strategies {
		cfg := readbackConfig(s, romio.ListIO)
		cfg.Resilient = true
		cfg.FaultPlan = plan
		rep := mustRun(t, cfg)
		if rep.ReadbackMismatches != 0 || rep.ReadbackReads == 0 {
			t.Fatalf("%v: resilient readback mismatches=%d reads=%d",
				s, rep.ReadbackMismatches, rep.ReadbackReads)
		}
		if !rep.Verified {
			t.Fatalf("%v: image not verified", s)
		}
	}
}

// TestReadbackOffIsBitIdentical pins the nil gate: a Config without Readback
// must produce byte-identical event streams whether or not this build knows
// how to read — guarded here by comparing against a second plain run (the
// golden files pin the absolute history).
func TestReadbackValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"no capture", func(c *Config) { c.CaptureData = false }, "CaptureData"},
		{"negative reads", func(c *Config) { c.Readback.InRunReads = -1 }, "non-negative"},
		{"no mode", func(c *Config) { c.Readback.InRunReads = 0; c.Readback.PostRun = false }, "neither"},
		{"bad method", func(c *Config) { c.Readback.Method = romio.Method(99) }, "unknown readback method"},
		{"collective without WWColl", func(c *Config) { c.Strategy = MW; c.Readback.Collective = true }, "WW-Coll"},
		{"collective resilient", func(c *Config) {
			c.Strategy = WWColl
			c.Readback.Collective = true
			c.Resilient = true
		}, "resilient"},
	}
	for _, c := range cases {
		cfg := readbackConfig(WWList, romio.Posix)
		c.mut(&cfg)
		_, err := Run(cfg)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

// TestReadPhaseFaultRequiresReadback pins the fault-plan gate end to end: a
// plan declaring phase=read is rejected unless the run configures readback.
func TestReadPhaseFaultRequiresReadback(t *testing.T) {
	plan, err := fault.Parse("outage@2ms:server=0,for=1ms,phase=read")
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.FaultPlan = plan
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "phase=read") {
		t.Fatalf("read-phase fault without readback accepted: %v", err)
	}
	cfg = readbackConfig(WWList, romio.Posix)
	cfg.Resilient = true
	cfg.FaultPlan = plan
	rep := mustRun(t, cfg)
	if rep.ReadbackMismatches != 0 {
		t.Fatalf("readback under read-phase outage: %d mismatches", rep.ReadbackMismatches)
	}
}
