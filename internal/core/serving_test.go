package core

import (
	"reflect"
	"sort"
	"testing"

	"s3asim/internal/des"
	"s3asim/internal/search"
)

// serveConfig is tinyConfig with a serving plan: evenly spaced arrivals.
func serveConfig(gap des.Time) Config {
	cfg := tinyConfig()
	cfg.Workload.NumQueries = 6
	arr := make([]des.Time, cfg.Workload.NumQueries)
	for i := range arr {
		arr[i] = des.Time(i) * gap
	}
	cfg.Serve = &ServePlan{Arrivals: arr}
	return cfg
}

func checkServeStats(t *testing.T, cfg Config, rep *Report) {
	t.Helper()
	if len(rep.Queries) != cfg.Workload.NumQueries {
		t.Fatalf("got %d query stats, want %d", len(rep.Queries), cfg.Workload.NumQueries)
	}
	for _, s := range rep.Queries {
		stamps := []des.Time{s.Arrival, s.Admitted, s.Dispatched, s.Gathered, s.FlushStart, s.Done}
		for i := 1; i < len(stamps); i++ {
			if stamps[i] < stamps[i-1] {
				t.Fatalf("query %d: stamps not monotone: %v", s.Q, stamps)
			}
		}
		if s.Latency() <= 0 {
			t.Fatalf("query %d: nonpositive latency %v", s.Q, s.Latency())
		}
	}
}

func TestServeLifecycleAllStrategies(t *testing.T) {
	for _, s := range Strategies {
		for _, qs := range []bool{false, true} {
			cfg := serveConfig(des.Millisecond)
			cfg.Strategy = s
			cfg.QuerySync = qs
			rep := mustRun(t, cfg)
			if !rep.Verified {
				t.Fatalf("%v sync=%v: image not verified", s, qs)
			}
			checkServeStats(t, cfg, rep)
		}
	}
}

// Arrivals spaced far apart must complete before the next arrival: the
// serving master drains scores and flushes during the idle gap instead of
// parking results until the stream picks back up.
func TestServeIdleGapsFlushInFlightQueries(t *testing.T) {
	for _, s := range Strategies {
		cfg := serveConfig(10 * des.Second)
		cfg.Strategy = s
		rep := mustRun(t, cfg)
		checkServeStats(t, cfg, rep)
		for i := 0; i < len(rep.Queries)-1; i++ {
			if rep.Queries[i].Done > rep.Queries[i+1].Arrival {
				t.Fatalf("%v: query %d done at %v, after next arrival %v",
					s, i, rep.Queries[i].Done, rep.Queries[i+1].Arrival)
			}
		}
	}
}

// Simultaneous arrivals under SJF must dispatch in ascending result-volume
// order (ties toward the earlier arrival).
func TestServeSJFDispatchesSmallestFirst(t *testing.T) {
	cfg := serveConfig(0)
	cfg.Serve.Admission = ServeSJF
	rep := mustRun(t, cfg)
	checkServeStats(t, cfg, rep)

	wl := search.Generate(cfg.Workload)
	want := make([]int, cfg.Workload.NumQueries)
	for i := range want {
		want[i] = i
	}
	sort.SliceStable(want, func(a, b int) bool {
		return wl.Queries[want[a]].Bytes < wl.Queries[want[b]].Bytes
	})
	got := make([]int, 0, len(rep.Queries))
	for _, s := range rep.Queries {
		got = append(got, s.Q)
	}
	sort.SliceStable(got, func(a, b int) bool {
		sa, sb := rep.Queries[got[a]], rep.Queries[got[b]]
		if sa.Dispatched != sb.Dispatched {
			return sa.Dispatched < sb.Dispatched
		}
		return sa.Q < sb.Q
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SJF dispatch order %v, want %v (bytes %v)", got, want, queryBytes(wl))
	}
}

func queryBytes(wl *search.Workload) []int64 {
	out := make([]int64, len(wl.Queries))
	for i := range wl.Queries {
		out[i] = wl.Queries[i].Bytes
	}
	return out
}

// Bursty simultaneous arrivals under WW-Coll with query sync exercise the
// run-ahead gate (task.Gate) with out-of-order flushes: the run must
// terminate (no gate deadlock) with every query durably written.
func TestServeWWCollBurstsNoDeadlock(t *testing.T) {
	for _, adm := range []ServeAdmission{ServeFIFO, ServeSJF} {
		cfg := tinyConfig()
		cfg.Procs = 7
		cfg.Workload.NumQueries = 12
		cfg.Strategy = WWColl
		cfg.QuerySync = true
		arr := make([]des.Time, cfg.Workload.NumQueries)
		for i := range arr {
			// Three bursts of four simultaneous arrivals.
			arr[i] = des.Time(i/4) * 5 * des.Millisecond
		}
		cfg.Serve = &ServePlan{Arrivals: arr, Admission: adm}
		rep := mustRun(t, cfg)
		if !rep.Verified {
			t.Fatalf("%v: image not verified", adm)
		}
		checkServeStats(t, cfg, rep)
	}
}

// The FSM worker engine must reproduce the goroutine engine's serving
// behavior exactly, including the Gate-based run-ahead check.
func TestServeFSMMatchesGoroutineEngine(t *testing.T) {
	for _, s := range Strategies {
		cfg := serveConfig(2 * des.Millisecond)
		cfg.Strategy = s
		cfg.QuerySync = true
		cfg.ProcModel = ProcGoroutine
		want := mustRun(t, cfg)
		cfg.ProcModel = ProcFSM
		got := mustRun(t, cfg)
		if !reflect.DeepEqual(got.Queries, want.Queries) {
			t.Fatalf("%v: FSM query stats diverge from goroutine engine:\n got %+v\nwant %+v",
				s, got.Queries, want.Queries)
		}
		if got.Overall != want.Overall {
			t.Fatalf("%v: FSM overall %v, goroutine %v", s, got.Overall, want.Overall)
		}
	}
}

// Serving mode rejects configurations it cannot honor.
func TestServeValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Serve.Arrivals = c.Serve.Arrivals[:2] },
		func(c *Config) { c.Serve.Arrivals[0], c.Serve.Arrivals[1] = des.Second, 0 },
		func(c *Config) { c.QueriesPerWrite = 2 },
		func(c *Config) { c.QueryGroups = 2 },
		func(c *Config) { c.ResumeFromQuery = 1 },
	}
	for i, mutate := range bad {
		cfg := serveConfig(des.Millisecond)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Fatalf("case %d: invalid serving config accepted", i)
		}
	}
}
