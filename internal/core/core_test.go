package core

import (
	"strings"
	"testing"

	"s3asim/internal/des"
	"s3asim/internal/stats"
)

// tinyConfig is a fast configuration with real data capture enabled so the
// output file image is fully verified.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Procs = 5
	cfg.Workload.NumQueries = 3
	cfg.Workload.NumFragments = 8
	cfg.Workload.QueryHist = stats.Uniform(100, 500)
	cfg.Workload.DBSeqHist = stats.Uniform(100, 2000)
	cfg.Workload.MinResults = 10
	cfg.Workload.MaxResults = 20
	cfg.Workload.MinResultSize = 64
	cfg.Workload.Seed = 7
	cfg.CaptureData = true
	return cfg
}

func mustRun(t *testing.T, cfg Config) *Report {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%v, sync=%v, procs=%d): %v",
			cfg.Strategy, cfg.QuerySync, cfg.Procs, err)
	}
	return rep
}

func TestAllStrategiesVerifyFileImage(t *testing.T) {
	for _, s := range Strategies {
		for _, qs := range []bool{false, true} {
			cfg := tinyConfig()
			cfg.Strategy = s
			cfg.QuerySync = qs
			rep := mustRun(t, cfg)
			if !rep.Verified {
				t.Fatalf("%v sync=%v: image not verified", s, qs)
			}
			if rep.OverlappedBytes != 0 {
				t.Fatalf("%v sync=%v: overlapping writes", s, qs)
			}
			if rep.FileCoverage != rep.OutputBytes {
				t.Fatalf("%v sync=%v: coverage %d of %d bytes",
					s, qs, rep.FileCoverage, rep.OutputBytes)
			}
		}
	}
}

func TestStrategiesProduceIdenticalBytesAcrossProcCounts(t *testing.T) {
	// The paper: "Although we use different numbers of processors, the
	// results are always identical since they are pseudo-randomly
	// generated." Verified file images must match across strategies AND
	// process counts; output byte count is the workload's.
	var want int64
	for _, procs := range []int{2, 3, 7} {
		for _, s := range Strategies {
			cfg := tinyConfig()
			cfg.Procs = procs
			cfg.Strategy = s
			rep := mustRun(t, cfg)
			if want == 0 {
				want = rep.OutputBytes
			}
			if rep.OutputBytes != want || rep.FileCoverage != want {
				t.Fatalf("%v procs=%d: bytes %d/%d, want %d",
					s, procs, rep.OutputBytes, rep.FileCoverage, want)
			}
			if !rep.Verified {
				t.Fatalf("%v procs=%d: unverified", s, procs)
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	for _, s := range Strategies {
		cfg := tinyConfig()
		cfg.Strategy = s
		a := mustRun(t, cfg)
		b := mustRun(t, cfg)
		if a.Overall != b.Overall || a.Events != b.Events {
			t.Fatalf("%v: nondeterministic runs: (%v,%d) vs (%v,%d)",
				s, a.Overall, a.Events, b.Overall, b.Events)
		}
	}
}

func TestPhaseTimesSumToTotal(t *testing.T) {
	cfg := tinyConfig()
	cfg.Strategy = WWList
	rep := mustRun(t, cfg)
	check := func(pb ProcBreakdown) {
		var sum des.Time
		for _, p := range pb.Phases {
			sum += p
		}
		if sum != pb.Total {
			t.Fatalf("rank %d: phases sum %v != total %v", pb.Rank, sum, pb.Total)
		}
		if pb.Total > rep.Overall {
			t.Fatalf("rank %d: total %v exceeds overall %v", pb.Rank, pb.Total, rep.Overall)
		}
	}
	check(rep.Master)
	for _, w := range rep.Workers {
		check(w)
	}
}

func TestMasterNeverComputesOrMerges(t *testing.T) {
	// Paper §3: master Compute and Merge Results phases are always zero.
	for _, s := range Strategies {
		cfg := tinyConfig()
		cfg.Strategy = s
		rep := mustRun(t, cfg)
		if rep.Master.Phases[PhaseCompute] != 0 {
			t.Fatalf("%v: master compute %v != 0", s, rep.Master.Phases[PhaseCompute])
		}
		if rep.Master.Phases[PhaseMerge] != 0 {
			t.Fatalf("%v: master merge %v != 0", s, rep.Master.Phases[PhaseMerge])
		}
	}
}

func TestOnlyMasterWritesUnderMW(t *testing.T) {
	cfg := tinyConfig()
	cfg.Strategy = MW
	rep := mustRun(t, cfg)
	if rep.Master.Phases[PhaseIO] == 0 {
		t.Fatal("MW: master I/O phase is zero")
	}
	for _, w := range rep.Workers {
		if w.Phases[PhaseIO] != 0 {
			t.Fatalf("MW: worker %d has I/O time %v", w.Rank, w.Phases[PhaseIO])
		}
	}
}

func TestWorkersWriteUnderWW(t *testing.T) {
	for _, s := range []Strategy{WWPosix, WWList, WWColl} {
		cfg := tinyConfig()
		cfg.Strategy = s
		rep := mustRun(t, cfg)
		if rep.Master.Phases[PhaseIO] != 0 {
			t.Fatalf("%v: master has I/O time %v", s, rep.Master.Phases[PhaseIO])
		}
		var total des.Time
		for _, w := range rep.Workers {
			total += w.Phases[PhaseIO]
		}
		if total == 0 {
			t.Fatalf("%v: no worker I/O time", s)
		}
	}
}

func TestWorkersMergeOnlyUnderWW(t *testing.T) {
	// Algorithm 2 step 8 runs only when parallel I/O is used.
	for _, s := range Strategies {
		cfg := tinyConfig()
		cfg.Strategy = s
		rep := mustRun(t, cfg)
		var merge des.Time
		for _, w := range rep.Workers {
			merge += w.Phases[PhaseMerge]
		}
		if s == MW && merge != 0 {
			t.Fatalf("MW: workers merged for %v", merge)
		}
		if s != MW && merge == 0 {
			t.Fatalf("%v: workers never merged", s)
		}
	}
}

func TestQuerySyncAddsSyncTime(t *testing.T) {
	for _, s := range []Strategy{WWPosix, WWList} {
		base := tinyConfig()
		base.Strategy = s
		noSync := mustRun(t, base)
		base.QuerySync = true
		withSync := mustRun(t, base)
		if withSync.Overall < noSync.Overall {
			t.Fatalf("%v: sync run (%v) faster than no-sync (%v)",
				s, withSync.Overall, noSync.Overall)
		}
	}
}

func TestQueriesPerWriteBatching(t *testing.T) {
	for _, s := range Strategies {
		for _, n := range []int{1, 2, 3} { // 3 queries: batches of 1, 2(+1), 3
			cfg := tinyConfig()
			cfg.Strategy = s
			cfg.QueriesPerWrite = n
			rep := mustRun(t, cfg)
			if !rep.Verified {
				t.Fatalf("%v n=%d: unverified", s, n)
			}
		}
	}
}

func TestWriteAtEndMatchesMpiBLAST12(t *testing.T) {
	// QueriesPerWrite = NumQueries reproduces the mpiBLAST-1.2/pioBLAST
	// write-at-end behaviour; there must be exactly one flush per run.
	cfg := tinyConfig()
	cfg.Strategy = MW
	cfg.QueriesPerWrite = cfg.Workload.NumQueries
	rep := mustRun(t, cfg)
	if !rep.Verified {
		t.Fatal("write-at-end: unverified")
	}
	// A single contiguous write covers everything: file-system requests
	// should be one per touched server, plus sync.
	perQuery := mustRun(t, func() Config {
		c := tinyConfig()
		c.Strategy = MW
		return c
	}())
	if rep.FS.TotalRequests >= perQuery.FS.TotalRequests {
		t.Fatalf("write-at-end requests %d not fewer than per-query %d",
			rep.FS.TotalRequests, perQuery.FS.TotalRequests)
	}
}

func TestSyncEveryWriteCostsTime(t *testing.T) {
	cfg := tinyConfig()
	cfg.Strategy = WWList
	with := mustRun(t, cfg)
	cfg.SyncEveryWrite = false
	without := mustRun(t, cfg)
	if without.Overall >= with.Overall {
		t.Fatalf("disabling file sync did not speed up the run: %v vs %v",
			without.Overall, with.Overall)
	}
	if without.FS.TotalSyncs != 0 {
		t.Fatalf("syncs issued with SyncEveryWrite off: %d", without.FS.TotalSyncs)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := func(mutate func(*Config)) {
		t.Helper()
		cfg := tinyConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Fatal("expected validation error")
		}
	}
	bad(func(c *Config) { c.Procs = 1 })
	bad(func(c *Config) { c.Workload.NumQueries = 0 })
	bad(func(c *Config) { c.QueriesPerWrite = 0 })
	bad(func(c *Config) { c.MergeBandwidth = 0 })
	bad(func(c *Config) { c.FormatBandwidth = -1 })
}

func TestStrategyParseRoundTrip(t *testing.T) {
	for _, s := range Strategies {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Fatalf("round trip %v: %v %v", s, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
}

func TestPhaseTimer(t *testing.T) {
	sim := des.New()
	var buckets [NumPhases]des.Time
	sim.Spawn("p", func(p *des.Proc) {
		pt := NewPhaseTimer(sim)
		pt.Switch(PhaseCompute)
		p.Sleep(5 * des.Second)
		pt.Switch(PhaseIO)
		p.Sleep(3 * des.Second)
		pt.Switch(PhaseIO) // no-op
		p.Sleep(des.Second)
		pt.Finish()
		pt.Switch(PhaseSync) // after Finish: ignored
		buckets = pt.Buckets()
		if pt.Total() != 9*des.Second {
			t.Errorf("total = %v", pt.Total())
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if buckets[PhaseCompute] != 5*des.Second || buckets[PhaseIO] != 4*des.Second {
		t.Fatalf("buckets = %v", buckets)
	}
	if buckets[PhaseSync] != 0 {
		t.Fatal("switch after Finish should not bill")
	}
}

func TestPhaseNamesMatchPaper(t *testing.T) {
	want := []string{"Setup", "Data Distribution", "Compute", "Merge Results",
		"Gather Results", "I/O", "Sync", "Other"}
	for i, w := range want {
		if Phase(i).String() != w {
			t.Fatalf("phase %d = %q, want %q", i, Phase(i), w)
		}
	}
}

func TestPhaseTableRenders(t *testing.T) {
	cfg := tinyConfig()
	rep := mustRun(t, cfg)
	tbl := rep.PhaseTable().String()
	for _, want := range []string{"master", "worker-avg", "datadist", "io"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("phase table missing %q:\n%s", want, tbl)
		}
	}
}

func TestOverrideIndMethodDataSieve(t *testing.T) {
	cfg := tinyConfig()
	cfg.Strategy = WWList
	cfg.OverrideIndMethod = true
	cfg.IndMethod = 2 // romio.DataSieve
	rep := mustRun(t, cfg)
	// Data sieving read-modify-writes whole windows: overlapping writes are
	// expected, which is exactly why ROMIO disables sieved writes on lock-
	// free PVFS2. The report must expose the hazard rather than hide it.
	if rep.OverlappedBytes == 0 {
		t.Fatal("sieved run reported no overlapping writes")
	}
	if rep.Verified {
		t.Fatal("sieved run must not claim content verification")
	}
}

func TestDisableMasterNICSerializationHelpsMW(t *testing.T) {
	cfg := tinyConfig()
	cfg.Strategy = MW
	cfg.Workload.MinResults = 100
	cfg.Workload.MaxResults = 150
	base := mustRun(t, cfg)
	cfg.DisableMasterNICSerialization = true
	fat := mustRun(t, cfg)
	if fat.Overall > base.Overall {
		t.Fatalf("uncontended master NIC slower: %v vs %v", fat.Overall, base.Overall)
	}
}

func TestCollectiveRunsUseFewerServerRequests(t *testing.T) {
	cfgList := tinyConfig()
	cfgList.Strategy = WWList
	list := mustRun(t, cfgList)
	cfgColl := tinyConfig()
	cfgColl.Strategy = WWColl
	coll := mustRun(t, cfgColl)
	// Aggregation coalesces adjacent results into runs, so the collective
	// run ships strictly fewer storage segments than per-worker list I/O.
	if coll.FS.TotalSegments >= list.FS.TotalSegments {
		t.Fatalf("two-phase aggregation should reduce storage segments: coll %d vs list %d",
			coll.FS.TotalSegments, list.FS.TotalSegments)
	}
}

func TestSingleWorker(t *testing.T) {
	for _, s := range Strategies {
		cfg := tinyConfig()
		cfg.Procs = 2
		cfg.Strategy = s
		rep := mustRun(t, cfg)
		if !rep.Verified {
			t.Fatalf("%v with one worker: unverified", s)
		}
	}
}

func TestMoreWorkersThanTasks(t *testing.T) {
	cfg := tinyConfig()
	cfg.Procs = 30 // 29 workers, 24 tasks
	cfg.Workload.NumQueries = 3
	cfg.Workload.NumFragments = 8
	for _, s := range Strategies {
		cfg.Strategy = s
		rep := mustRun(t, cfg)
		if !rep.Verified {
			t.Fatalf("%v oversubscribed workers: unverified", s)
		}
	}
}
