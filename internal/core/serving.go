package core

import (
	"fmt"

	"s3asim/internal/des"
	"s3asim/internal/mpi"
	"s3asim/internal/obs"
)

// Open-loop serving mode (DESIGN.md §13). The paper runs one closed batch:
// every query is available at t=0 and the master deals them out as fast as
// workers ask. A serving run instead gives every query an arrival time — the
// master admits a query only once it has arrived, queues admitted queries
// under a FIFO or shortest-job-first discipline, and idles (draining scores
// and flushing finished batches) when the queue is empty but arrivals
// remain. Every query carries a lifecycle span (arrival → admission → queue
// → dispatch → merge → write → complete) recorded in Report.Queries, the
// raw material for the serve telemetry layer (internal/serve,
// experiments.RunServeSweep).
//
// All serving behavior is gated on Config.Serve != nil: a nil plan runs the
// original closed-batch protocol byte-for-byte.

// ServeAdmission selects the admission-queue discipline of a serving run.
type ServeAdmission int

const (
	// ServeFIFO dispatches admitted queries in arrival order.
	ServeFIFO ServeAdmission = iota
	// ServeSJF dispatches the admitted query with the smallest expected
	// result volume first (shortest-job-first by modeled service demand;
	// ties break toward the earlier arrival).
	ServeSJF
)

// String names the admission discipline.
func (a ServeAdmission) String() string {
	if a == ServeSJF {
		return "sjf"
	}
	return "fifo"
}

// ServePlan switches a run into the open-loop serving scenario.
type ServePlan struct {
	// Arrivals[q] is query q's arrival time; queries are indexed in arrival
	// order, so the slice must be nondecreasing and exactly NumQueries long.
	// Generate schedules with internal/serve.
	Arrivals []des.Time
	// Admission selects the queue discipline.
	Admission ServeAdmission
	// Tenants, when non-empty, names each query's traffic stream (parallel
	// to Arrivals). Per-tenant latency histograms serve.latency.<tenant>
	// are then recorded next to the aggregate serve.latency series.
	Tenants []string
	// SLO is the end-to-end latency target: queries above it count into the
	// serve.slo_violations counter, the numerator of burn-rate alert rules.
	// 0 disables the counter.
	SLO des.Time
}

// tenantOf returns query q's tenant name, or "" without tenant labels.
func (p *ServePlan) tenantOf(q int) string {
	if q < 0 || q >= len(p.Tenants) {
		return ""
	}
	return p.Tenants[q]
}

// QueryStat is one query's recorded lifecycle in a serving run. The stamps
// are nondecreasing: Arrival ≤ Admitted ≤ Dispatched ≤ Gathered ≤
// FlushStart ≤ Done.
type QueryStat struct {
	Q int
	// Arrival is the configured arrival time (ServePlan.Arrivals[Q]).
	Arrival des.Time
	// Admitted is when the master took the query into its admission queue.
	Admitted des.Time
	// Dispatched is when the first fragment task was handed to a worker.
	Dispatched des.Time
	// Gathered is when the master finished merging the last fragment's
	// scores.
	Gathered des.Time
	// FlushStart is when the master initiated the result flush (the MW write
	// or the WW offset-list distribution).
	FlushStart des.Time
	// Done is when the query's results were durably written (the batch
	// flush-time stamp).
	Done des.Time
	// Proc names the process that completed the write — the start anchor
	// for a per-query causal.CriticalPathBetween walk.
	Proc string
}

// Latency is the query's end-to-end latency: arrival to durable result.
func (s QueryStat) Latency() des.Time { return s.Done - s.Arrival }

// serveState is the master-side bookkeeping of a serving run.
type serveState struct {
	plan  *ServePlan
	stats []QueryStat

	nextArr int   // next not-yet-admitted arrival index
	queue   []int // admitted, not-yet-dispatched query indices
	curQ    int   // query currently handing out fragments (-1: none)
	curF    int   // next fragment of curQ

	flushesSent int    // flush rounds initiated (the WW-Coll gate base)
	flushedB    []bool // per group-local batch: flush initiated
}

// newServeState builds the bookkeeping for plan (validated by Config).
func newServeState(plan *ServePlan) *serveState {
	sv := &serveState{plan: plan, curQ: -1, stats: make([]QueryStat, len(plan.Arrivals))}
	for q := range sv.stats {
		sv.stats[q] = QueryStat{Q: q, Arrival: plan.Arrivals[q]}
	}
	return sv
}

// admit moves every arrival at or before now into the admission queue.
func (sv *serveState) admit(now des.Time) {
	for sv.nextArr < len(sv.plan.Arrivals) && sv.plan.Arrivals[sv.nextArr] <= now {
		sv.stats[sv.nextArr].Admitted = now
		sv.queue = append(sv.queue, sv.nextArr)
		sv.nextArr++
	}
}

// pick removes the next query from the admission queue per the configured
// discipline and makes it current. Caller guarantees the queue is non-empty.
func (sv *serveState) pick(rt *runtime, now des.Time) {
	best := 0
	if sv.plan.Admission == ServeSJF {
		for i := 1; i < len(sv.queue); i++ {
			if rt.wl.Queries[sv.queue[i]].Bytes < rt.wl.Queries[sv.queue[best]].Bytes {
				best = i
			}
		}
	}
	q := sv.queue[best]
	sv.queue = append(sv.queue[:best], sv.queue[best+1:]...)
	sv.stats[q].Dispatched = now
	sv.curQ, sv.curF = q, 0
}

// serveNext produces the next (query, fragment) task of a serving master, or
// ok=false when every query has been fully dispatched. When nothing is
// admitted but arrivals remain, the master idles until the next arrival —
// the open-loop gap the closed protocol never has — draining scores and
// flushing finished batches as they land so result durability does not wait
// on the next arrival.
func (rt *runtime) serveNext(r *mpi.Rank, pt *PhaseTimer, g *group, st *masterState) (task, bool) {
	sv := rt.serve
	cfg := rt.cfg
	for {
		sv.admit(rt.sim.Now())
		if sv.curQ < 0 && len(sv.queue) > 0 {
			sv.pick(rt, rt.sim.Now())
		}
		if sv.curQ >= 0 {
			t := task{Q: sv.curQ, F: sv.curF, Gate: sv.flushesSent}
			if rt.ad != nil {
				t.Strat = rt.adaptTaskStrat(g, sv.curQ)
			}
			sv.curF++
			if sv.curF == cfg.Workload.NumFragments {
				sv.curQ = -1
			}
			return t, true
		}
		if sv.nextArr >= len(sv.plan.Arrivals) {
			return task{}, false
		}
		rt.serveIdle(r, pt, g, st, sv.plan.Arrivals[sv.nextArr])
	}
}

// serveIdle waits out the gap to the next arrival while still servicing the
// backend: completed score receives are drained (merging results and
// flushing finished batches) the moment they land, so a quiet arrival stream
// does not delay durability of in-flight queries.
func (rt *runtime) serveIdle(r *mpi.Rank, pt *PhaseTimer, g *group, st *masterState, deadline des.Time) {
	for rt.sim.Now() < deadline {
		if len(st.scoreReqs) == 0 {
			// Nothing in flight: sleep straight to the arrival. The paper
			// bills master waiting to data distribution.
			pt.Switch(PhaseDataDist)
			r.Proc().Sleep(deadline - rt.sim.Now())
			continue
		}
		pt.Switch(PhaseGather)
		r.WaitAnyUntil(st.scoreReqs, deadline)
		rt.masterDrain(r, pt, g, st)
	}
}

// serveFlush flushes every batch whose queries are complete, in batch order
// but without the closed-batch in-order restriction: under SJF (or any
// out-of-order completion) a later query's batch may flush while an earlier
// query is still in flight. Each initiated flush advances the run-ahead gate
// (task.Gate) new dispatches carry.
func (rt *runtime) serveFlush(r *mpi.Rank, pt *PhaseTimer, g *group, st *masterState) {
	sv := rt.serve
	for bi := range g.batches {
		if sv.flushedB[bi] {
			continue
		}
		b := g.batches[bi]
		ready := true
		for q := b.LoQ; q < b.HiQ; q++ {
			if !st.complete[q] {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		now := rt.sim.Now()
		for q := b.LoQ; q < b.HiQ; q++ {
			sv.stats[q].FlushStart = now
		}
		rt.flushBatch(r, pt, g, st, bi)
		sv.flushedB[bi] = true
		sv.flushesSent++
		st.flushed++
	}
}

// serveStampGathered records when a query's last fragment finished merging.
func (rt *runtime) serveStampGathered(q int) {
	if sv := rt.serve; sv != nil {
		sv.stats[q].Gathered = rt.sim.Now()
	}
}

// serveStampDone records who durably completed a batch's write and when.
// With QueriesPerWrite == 1 (enforced by Validate for serving runs) the
// global batch index is the query index.
func (rt *runtime) serveStampDone(globalBatch int, proc string) {
	if sv := rt.serve; sv != nil {
		sv.stats[globalBatch].Done = rt.flushTimes[globalBatch]
		sv.stats[globalBatch].Proc = proc
	}
}

// Serving-run span states, emitted as per-query timeline tracks (and the
// Perfetto per-query view). Each name owns a distinct legend rune under
// trace.StateRunes.
const (
	serveStateAdmission = "Admission"  // arrival → admitted by the master
	serveStateQueued    = "Queued"     // admitted → first fragment dispatched
	serveStateExecute   = "Execute"    // dispatched → last merge finished
	serveStateWriteWait = "Write Wait" // merged → flush initiated
	serveStateFlush     = "Flush"      // flush initiated → durably written
)

// serveEmitSpans replays every query's lifecycle into the run's sink as one
// track per query, in query order — deterministic, and emitted only after
// the simulation completed so serving instrumentation never perturbs event
// order. Zero-length spans are skipped.
func (rt *runtime) serveEmitSpans(sink obs.Sink) {
	if sink == nil {
		return
	}
	for i := range rt.serve.stats {
		s := &rt.serve.stats[i]
		proc := fmt.Sprintf("query%04d", s.Q)
		spans := [...]struct {
			name     string
			from, to des.Time
		}{
			{serveStateAdmission, s.Arrival, s.Admitted},
			{serveStateQueued, s.Admitted, s.Dispatched},
			{serveStateExecute, s.Dispatched, s.Gathered},
			{serveStateWriteWait, s.Gathered, s.FlushStart},
			{serveStateFlush, s.FlushStart, s.Done},
		}
		for _, sp := range spans {
			if sp.to <= sp.from {
				continue
			}
			sink.BeginState(proc, sp.name, sp.from)
			sink.EndState(proc, sp.to)
		}
		sink.Point(proc, "complete", s.Done)
	}
}

// serveQueryStats finalizes and returns the per-query lifecycle records. A
// query with no results sees no worker write under the WW strategies, so no
// stamp lands; its flush completes the moment it starts (Proc stays empty
// and the causal walk falls back to the furthest-running process).
func (rt *runtime) serveQueryStats() []QueryStat {
	for i := range rt.serve.stats {
		if s := &rt.serve.stats[i]; s.Done < s.FlushStart {
			s.Done = s.FlushStart
		}
	}
	return append([]QueryStat(nil), rt.serve.stats...)
}

// serveRecordMetrics backfills the serving run's per-query metrics into the
// registry in event time: each query's completion counts and its latency is
// observed (with the query ID as exemplar) at its Done stamp, so the
// windowed series resolves when load landed rather than when the run ended.
// Queries are replayed in index (= arrival) order — deterministic, and the
// same fold order every parallelism produces. Must run after serveQueryStats
// has finalized the stamps.
func (rt *runtime) serveRecordMetrics() {
	sv := rt.serve
	m := rt.metrics
	for i := range sv.stats {
		s := &sv.stats[i]
		lat := s.Latency().Seconds()
		m.AddAt("serve.queries", 1, s.Done)
		m.ObserveExemplarAt("serve.latency", lat, int64(s.Q), s.Done)
		if tenant := sv.plan.tenantOf(i); tenant != "" {
			m.ObserveExemplarAt("serve.latency."+tenant, lat, int64(s.Q), s.Done)
		}
		if sv.plan.SLO > 0 && s.Latency() > sv.plan.SLO {
			m.AddAt("serve.slo_violations", 1, s.Done)
		}
	}
}

// validateServe checks the serving plan against the rest of the config.
func (c *Config) validateServe() error {
	s := c.Serve
	if s == nil {
		return nil
	}
	if c.resilient() {
		if !c.Resilient && c.FaultPlan.NeedsResilience() {
			return fmt.Errorf("core: serving mode supports only performance-fault plans (degrade, outage, delay)")
		}
		return fmt.Errorf("core: serving mode is incompatible with the resilient protocol")
	}
	if c.QueryGroups > 1 {
		return fmt.Errorf("core: serving mode requires a single query group")
	}
	if c.QueriesPerWrite != 1 {
		return fmt.Errorf("core: serving mode requires QueriesPerWrite == 1 (per-query flushes)")
	}
	if c.ResumeFromQuery != 0 {
		return fmt.Errorf("core: serving mode cannot resume mid-stream")
	}
	if len(s.Arrivals) != c.Workload.NumQueries {
		return fmt.Errorf("core: serving plan has %d arrivals for %d queries",
			len(s.Arrivals), c.Workload.NumQueries)
	}
	if len(s.Tenants) != 0 && len(s.Tenants) != len(s.Arrivals) {
		return fmt.Errorf("core: serving plan has %d tenant labels for %d queries",
			len(s.Tenants), len(s.Arrivals))
	}
	if s.SLO < 0 {
		return fmt.Errorf("core: serving SLO must be non-negative")
	}
	var prev des.Time
	for i, at := range s.Arrivals {
		if at < prev {
			return fmt.Errorf("core: serving arrivals must be nondecreasing (index %d: %v after %v)",
				i, at, prev)
		}
		prev = at
	}
	return nil
}
