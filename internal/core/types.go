// Package core implements the S3aSim engine itself: the master process
// (paper Algorithm 1), the worker processes (Algorithm 2), the four result
// I/O strategies (MW, WW-POSIX, WW-List, WW-Coll), the query-sync option,
// and the per-phase timing decomposition the paper's figures report.
package core

import (
	"fmt"

	"s3asim/internal/des"
	"s3asim/internal/obs"
)

// Strategy selects how result data reaches the output file (paper §2).
type Strategy int

const (
	// MW: workers ship scores and full results to the master, which merges
	// and writes each completed query contiguously (mpiBLAST-1.2-like).
	MW Strategy = iota
	// WWPosix: workers write their own results using individual
	// noncontiguous POSIX I/O — one write per result segment.
	WWPosix
	// WWList: workers write their own results using individual
	// noncontiguous list I/O — batched per-server requests (the paper's
	// proposed strategy).
	WWList
	// WWColl: workers write collectively via two-phase MPI-IO
	// (pioBLAST-like).
	WWColl
)

// Strategies lists all strategies in presentation order.
var Strategies = []Strategy{MW, WWPosix, WWList, WWColl}

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case MW:
		return "MW"
	case WWPosix:
		return "WW-POSIX"
	case WWList:
		return "WW-List"
	case WWColl:
		return "WW-Coll"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy resolves a strategy name (as printed by String).
func ParseStrategy(name string) (Strategy, error) {
	for _, s := range Strategies {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("core: unknown strategy %q", name)
}

// WorkerWriting reports whether workers perform the file writes ("parallel
// I/O" in the paper's algorithm listings).
func (s Strategy) WorkerWriting() bool { return s != MW }

// Phase is one of the paper's timing phases (§3).
type Phase int

const (
	PhaseSetup Phase = iota
	PhaseDataDist
	PhaseCompute
	PhaseMerge
	PhaseGather
	PhaseIO
	PhaseSync
	PhaseOther
	NumPhases
)

// PhaseNames maps phases to the paper's labels.
var PhaseNames = [NumPhases]string{
	"Setup", "Data Distribution", "Compute", "Merge Results",
	"Gather Results", "I/O", "Sync", "Other",
}

// String returns the paper's label for the phase.
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return fmt.Sprintf("Phase(%d)", int(p))
	}
	return PhaseNames[p]
}

// PhaseTimer attributes elapsed virtual time to phases. Exactly one phase
// is current at a time; all blocking inside a phase bills to it, matching
// the paper's instrumentation.
type PhaseTimer struct {
	sim     *des.Simulation
	current Phase
	since   des.Time
	buckets [NumPhases]des.Time
	closed  bool

	sink     obs.Sink // optional: phase transitions become timeline states
	procName string
}

// NewPhaseTimer starts a timer in PhaseOther at the current virtual time.
func NewPhaseTimer(sim *des.Simulation) *PhaseTimer {
	return &PhaseTimer{sim: sim, current: PhaseOther, since: sim.Now()}
}

// Trace attaches a timeline sink (a *trace.Tracer, an obs.StreamSink, or
// any obs.Sink): every phase switch is recorded as a state of the named
// process (the MPE/Jumpshot-style timeline of paper §3).
func (t *PhaseTimer) Trace(sink obs.Sink, procName string) {
	t.sink = sink
	t.procName = procName
	if sink != nil {
		sink.BeginState(procName, t.current.String(), t.since)
	}
}

// Switch bills time since the last switch to the current phase and makes p
// current. Switching to the current phase is a no-op.
func (t *PhaseTimer) Switch(p Phase) {
	if t.closed || p == t.current {
		return
	}
	now := t.sim.Now()
	t.buckets[t.current] += now - t.since
	t.since = now
	t.current = p
	if t.sink != nil {
		t.sink.BeginState(t.procName, p.String(), now)
	}
}

// Current returns the phase being billed.
func (t *PhaseTimer) Current() Phase { return t.current }

// Finish bills the tail and freezes the timer.
func (t *PhaseTimer) Finish() {
	if t.closed {
		return
	}
	now := t.sim.Now()
	t.buckets[t.current] += now - t.since
	t.since = now
	t.closed = true
	if t.sink != nil {
		t.sink.EndState(t.procName, now)
	}
}

// Buckets returns the per-phase totals.
func (t *PhaseTimer) Buckets() [NumPhases]des.Time { return t.buckets }

// Total returns the sum over all phases.
func (t *PhaseTimer) Total() des.Time {
	var sum des.Time
	for _, b := range t.buckets {
		sum += b
	}
	return sum
}
