package s3asim_test

import (
	"testing"

	"s3asim"
)

// quickCfg is a fast facade-level configuration.
func quickCfg() s3asim.Config {
	opts := s3asim.QuickOptions()
	cfg := opts.Base
	cfg.Procs = 6
	return cfg
}

func TestFacadeCollectiveComparison(t *testing.T) {
	tbl, err := s3asim.CollectiveComparison(quickCfg(), []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 1 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}

func TestFacadeHybridComparison(t *testing.T) {
	cfg := quickCfg()
	cfg.Strategy = s3asim.MW
	tbl, err := s3asim.HybridComparison(cfg, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}

func TestFacadeResumeTradeoff(t *testing.T) {
	cfg := quickCfg()
	outcomes, err := s3asim.ResumeTradeoff(cfg, []int{1, cfg.Workload.NumQueries}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 2 {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	tbl := s3asim.ResumeTable(outcomes)
	if tbl.NumRows() != 2 {
		t.Fatalf("table rows = %d", tbl.NumRows())
	}
	// Per-query writes must preserve at least as much durable work as
	// write-at-end under a mid-run failure.
	if outcomes[0].ResumeFrom < outcomes[1].ResumeFrom {
		t.Fatalf("per-query writes preserved less work: %+v", outcomes)
	}
}

func TestFacadeServerAndOutputSweeps(t *testing.T) {
	cfg := quickCfg()
	servers, err := s3asim.ServerSweep(cfg, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if servers.NumRows() != 2 {
		t.Fatalf("server rows = %d", servers.NumRows())
	}
	output, err := s3asim.OutputScaleSweep(cfg, []float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if output.NumRows() != 2 {
		t.Fatalf("output rows = %d", output.NumRows())
	}
}

func TestFacadeCollMethodAndGroups(t *testing.T) {
	cfg := quickCfg()
	cfg.Strategy = s3asim.WWColl
	cfg.CollMethod = s3asim.ListSync
	cfg.QueryGroups = 2
	rep, err := s3asim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QueryGroups != 2 || len(rep.Masters) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if s3asim.ListSync.String() != "list-sync" || s3asim.TwoPhase.String() != "two-phase" {
		t.Fatal("collective method names")
	}
}

func TestFacadePaperOptionsShape(t *testing.T) {
	opts := s3asim.PaperOptions()
	if len(opts.Procs) != 8 || opts.Procs[len(opts.Procs)-1] != 96 {
		t.Fatalf("paper proc sweep = %v", opts.Procs)
	}
	if len(opts.Speeds) != 9 || opts.SpeedProcs != 64 {
		t.Fatalf("paper speed sweep = %v @ %d", opts.Speeds, opts.SpeedProcs)
	}
}
