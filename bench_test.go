// Benchmark harness: one benchmark per figure of the paper's evaluation
// (§4), plus ablation benchmarks for the design choices called out in
// DESIGN.md §5.
//
// Figures 2–4 derive from one process-scalability sweep and Figures 5–7
// from one compute-speed sweep — exactly as in the paper, where each suite
// was a single set of runs plotted several ways. The two sweeps are
// executed inside BenchmarkFigure2ProcessScaling and
// BenchmarkFigure5ComputeSpeedScaling; the phase-breakdown figure
// benchmarks render and validate their views of the shared sweep (cached
// after first use) and report the headline numbers as custom metrics.
//
// Sweeps fan their cells out across GOMAXPROCS workers by default
// (Options.Parallelism) and share each generated workload across cells;
// BenchmarkSweepParallelSpeedup measures the executor's wall-clock speedup
// against a sequential run of the same suite and verifies bit-identical
// results. Set S3ASIM_BENCH_SCALE=quick to run the reduced suite.
//
//	go test -bench=. -benchmem
package s3asim_test

import (
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"

	"s3asim"
)

func benchOptions() s3asim.Options {
	if os.Getenv("S3ASIM_BENCH_SCALE") == "quick" {
		return s3asim.QuickOptions()
	}
	return s3asim.PaperOptions()
}

var (
	procSweepOnce  sync.Once
	procSweep      *s3asim.SweepResult
	speedSweepOnce sync.Once
	speedSweep     *s3asim.SweepResult
)

func sharedProcSweep(b *testing.B) *s3asim.SweepResult {
	procSweepOnce.Do(func() {
		sr, err := s3asim.RunProcessSweep(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		procSweep = sr
	})
	if procSweep == nil {
		b.Fatal("process sweep unavailable")
	}
	return procSweep
}

func sharedSpeedSweep(b *testing.B) *s3asim.SweepResult {
	speedSweepOnce.Do(func() {
		sr, err := s3asim.RunSpeedSweep(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		speedSweep = sr
	})
	if speedSweep == nil {
		b.Fatal("speed sweep unavailable")
	}
	return speedSweep
}

func maxX(sr *s3asim.SweepResult) float64 { return sr.Xs[len(sr.Xs)-1] }

// nearestX returns the sweep point closest to want.
func nearestX(sr *s3asim.SweepResult, want float64) float64 {
	best := sr.Xs[0]
	for _, x := range sr.Xs {
		if d, bd := x-want, best-want; d*d < bd*bd {
			best = x
		}
	}
	return best
}

// BenchmarkFigure2ProcessScaling regenerates Figure 2: overall execution
// time of all four strategies while scaling processes, no-sync and sync.
func BenchmarkFigure2ProcessScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sr, err := s3asim.RunProcessSweep(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		procSweepOnce.Do(func() {}) // mark as computed
		procSweep = sr
	}
	sr := procSweep
	b.Log("\n" + sr.OverallTable(false).String())
	b.Log("\n" + sr.OverallTable(true).String())
	x := maxX(sr)
	b.ReportMetric(sr.Cell(s3asim.WWList, false, x).Overall.Seconds(), "WW-List-s")
	b.ReportMetric(sr.Cell(s3asim.MW, false, x).Overall.Seconds(), "MW-s")
	b.ReportMetric(100*sr.Ratio(s3asim.WWList, s3asim.MW, false, x), "MW-deficit-%")
}

// phaseFigure renders one phase-breakdown figure (two strategy panels in
// both sync modes) from a shared sweep and reports the dominant phases.
func phaseFigure(b *testing.B, sweep func(*testing.B) *s3asim.SweepResult, s1, s2 s3asim.Strategy) {
	var sr *s3asim.SweepResult
	for i := 0; i < b.N; i++ {
		sr = sweep(b)
		for _, s := range []s3asim.Strategy{s1, s2} {
			for _, sync := range []bool{false, true} {
				if tbl := sr.PhaseTable(s, sync); tbl.NumRows() == 0 {
					b.Fatalf("empty phase table for %v sync=%v", s, sync)
				}
			}
		}
	}
	for _, s := range []s3asim.Strategy{s1, s2} {
		b.Log("\n" + sr.PhaseTable(s, false).String())
		b.Log("\n" + sr.PhaseTable(s, true).String())
	}
	x := maxX(sr)
	for _, s := range []s3asim.Strategy{s1, s2} {
		cell := sr.Cell(s, false, x)
		b.ReportMetric(cell.WorkerPhases[s3asim.PhaseIO].Seconds(),
			fmt.Sprintf("%s-io-s", s))
		b.ReportMetric(cell.WorkerPhases[s3asim.PhaseDataDist].Seconds(),
			fmt.Sprintf("%s-dd-s", s))
	}
}

// BenchmarkFigure3PhaseBreakdownMWPosix regenerates Figure 3: worker phase
// decomposition for MW and WW-POSIX across the process sweep.
func BenchmarkFigure3PhaseBreakdownMWPosix(b *testing.B) {
	phaseFigure(b, sharedProcSweep, s3asim.MW, s3asim.WWPosix)
}

// BenchmarkFigure4PhaseBreakdownListColl regenerates Figure 4: worker phase
// decomposition for WW-List and WW-Coll across the process sweep.
func BenchmarkFigure4PhaseBreakdownListColl(b *testing.B) {
	phaseFigure(b, sharedProcSweep, s3asim.WWList, s3asim.WWColl)
}

// BenchmarkFigure5ComputeSpeedScaling regenerates Figure 5: overall
// execution time while scaling the compute-speed factor at a fixed process
// count (paper: 64).
func BenchmarkFigure5ComputeSpeedScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sr, err := s3asim.RunSpeedSweep(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		speedSweepOnce.Do(func() {})
		speedSweep = sr
	}
	sr := speedSweep
	b.Log("\n" + sr.OverallTable(false).String())
	b.Log("\n" + sr.OverallTable(true).String())
	lo, hi := sr.Xs[0], maxX(sr)
	// The paper's key observation: MW is flat under compute speedup. The
	// paper's sweep has no exact speed 1 (0.8 and 1.6 bracket it), so
	// compare from the sweep point nearest the base speed.
	base := nearestX(sr, 1)
	mwLo := sr.Cell(s3asim.MW, false, base).Overall.Seconds()
	mwHi := sr.Cell(s3asim.MW, false, hi).Overall.Seconds()
	b.ReportMetric(100*(mwHi/mwLo-1), "MW-flatness-%")
	b.ReportMetric(sr.Cell(s3asim.WWList, false, lo).Overall.Seconds(), "WW-List-slow-s")
	b.ReportMetric(sr.Cell(s3asim.WWList, false, hi).Overall.Seconds(), "WW-List-fast-s")
}

// BenchmarkFigure6PhaseBreakdownMWPosix regenerates Figure 6: worker phase
// decomposition for MW and WW-POSIX across the speed sweep.
func BenchmarkFigure6PhaseBreakdownMWPosix(b *testing.B) {
	phaseFigure(b, sharedSpeedSweep, s3asim.MW, s3asim.WWPosix)
}

// BenchmarkFigure7PhaseBreakdownListColl regenerates Figure 7: worker phase
// decomposition for WW-List and WW-Coll across the speed sweep.
func BenchmarkFigure7PhaseBreakdownListColl(b *testing.B) {
	phaseFigure(b, sharedSpeedSweep, s3asim.WWList, s3asim.WWColl)
}

// BenchmarkSweepParallelSpeedup runs the Figure-2 suite with the parallel
// executor (4 workers, the acceptance point) and once sequentially,
// reporting the realized wall-clock speedup, the estimated speedup from
// summed cell times, and the workload-cache hit rate — and failing if the
// two executions are not bit-identical.
func BenchmarkSweepParallelSpeedup(b *testing.B) {
	var par *s3asim.SweepResult
	for i := 0; i < b.N; i++ {
		opts := benchOptions()
		opts.Parallelism = 4
		sr, err := s3asim.RunProcessSweep(opts)
		if err != nil {
			b.Fatal(err)
		}
		par = sr
	}
	seqOpts := benchOptions()
	seqOpts.Parallelism = 1
	seq, err := s3asim.RunProcessSweep(seqOpts)
	if err != nil {
		b.Fatal(err)
	}
	ps, ss := par.Perf, seq.Perf
	par.Perf, seq.Perf = s3asim.SweepPerf{}, s3asim.SweepPerf{}
	if !reflect.DeepEqual(par, seq) {
		b.Fatal("parallel sweep diverged from sequential sweep")
	}
	b.ReportMetric(ss.Elapsed.Seconds()/ps.Elapsed.Seconds(), "speedup-x")
	b.ReportMetric(ps.Speedup(), "est-speedup-x")
	b.ReportMetric(float64(ps.Workload.Hits), "cache-hits")
	b.ReportMetric(float64(ps.Workload.Misses), "workload-gens")
}

// BenchmarkHeadlineRatios regenerates the §4 text's headline comparisons:
// the percentage by which WW-List outperforms each other strategy at the
// largest process count and the fastest compute speed, in both sync modes.
// (Paper: 364/33/75% and 182/37/13% at 96 procs; 592/32/98% and 444/65/58%
// at compute speed 25.6.)
func BenchmarkHeadlineRatios(b *testing.B) {
	var procs, speeds *s3asim.SweepResult
	for i := 0; i < b.N; i++ {
		procs = sharedProcSweep(b)
		speeds = sharedSpeedSweep(b)
	}
	b.Log("\n" + procs.HeadlineTable(maxX(procs)).String())
	b.Log("\n" + speeds.HeadlineTable(maxX(speeds)).String())
	for _, s := range []s3asim.Strategy{s3asim.MW, s3asim.WWPosix, s3asim.WWColl} {
		b.ReportMetric(100*procs.Ratio(s3asim.WWList, s, false, maxX(procs)),
			fmt.Sprintf("procs-%s-%%", s))
		b.ReportMetric(100*speeds.Ratio(s3asim.WWList, s, false, maxX(speeds)),
			fmt.Sprintf("speed-%s-%%", s))
	}
}
