// Ablation benchmarks for the design choices DESIGN.md §5 calls out. Each
// isolates one mechanism of the cost model or one algorithmic alternative
// the paper discusses.
package s3asim_test

import (
	"os"
	"testing"

	"s3asim"
)

// ablationConfig returns the base configuration for ablations: the paper
// workload at 64 processes (quick scale honors S3ASIM_BENCH_SCALE).
func ablationConfig() s3asim.Config {
	cfg := s3asim.DefaultConfig()
	if os.Getenv("S3ASIM_BENCH_SCALE") == "quick" {
		q := s3asim.QuickOptions()
		cfg = q.Base
		cfg.Procs = 8
	}
	return cfg
}

func runCfg(b *testing.B, cfg s3asim.Config) *s3asim.Report {
	b.Helper()
	rep, err := s3asim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkAblationListVsPosixOverhead sweeps the per-segment server
// overhead, the parameter separating list I/O from POSIX I/O: when segment
// processing is as costly as a whole request (2006 PVFS2 regime), batching
// buys less; when segments are nearly free, list I/O's advantage is the
// request-count ratio.
func BenchmarkAblationListVsPosixOverhead(b *testing.B) {
	base := ablationConfig()
	var lastRatio float64
	for i := 0; i < b.N; i++ {
		for _, mult := range []float64{0.1, 1, 4} {
			cfg := base
			cfg.FS.SegmentOverhead = nsTime(float64(base.FS.SegmentOverhead) * mult)
			cfg.Strategy = s3asim.WWList
			list := runCfg(b, cfg)
			cfg.Strategy = s3asim.WWPosix
			posix := runCfg(b, cfg)
			ratio := float64(posix.Overall) / float64(list.Overall)
			if mult == 1 {
				lastRatio = ratio
			}
			b.Logf("segment-overhead x%g: posix/list = %.2f (list %.1fs, posix %.1fs)",
				mult, ratio, list.Overall.Seconds(), posix.Overall.Seconds())
		}
	}
	b.ReportMetric(lastRatio, "posix/list")
}

// BenchmarkAblationCollectiveImpl compares ROMIO-style two-phase collective
// I/O (WW-Coll) against the paper's closing suggestion: a collective built
// from list I/O plus forced synchronization (WW-List with query sync).
func BenchmarkAblationCollectiveImpl(b *testing.B) {
	base := ablationConfig()
	var coll, listSync *s3asim.Report
	for i := 0; i < b.N; i++ {
		cfg := base
		cfg.Strategy = s3asim.WWColl
		coll = runCfg(b, cfg)
		cfg.Strategy = s3asim.WWList
		cfg.QuerySync = true
		listSync = runCfg(b, cfg)
	}
	b.Logf("two-phase collective: %.1fs; list I/O + forced sync: %.1fs (paper predicts the latter wins)",
		coll.Overall.Seconds(), listSync.Overall.Seconds())
	b.ReportMetric(coll.Overall.Seconds(), "two-phase-s")
	b.ReportMetric(listSync.Overall.Seconds(), "list+sync-s")
}

// BenchmarkAblationMasterNIC isolates receive-side NIC serialization at the
// master under MW by giving the master's node unbounded NIC parallelism.
func BenchmarkAblationMasterNIC(b *testing.B) {
	base := ablationConfig()
	var with, without *s3asim.Report
	for i := 0; i < b.N; i++ {
		cfg := base
		cfg.Strategy = s3asim.MW
		with = runCfg(b, cfg)
		cfg.DisableMasterNICSerialization = true
		without = runCfg(b, cfg)
	}
	b.Logf("MW with NIC serialization: %.1fs; without: %.1fs",
		with.Overall.Seconds(), without.Overall.Seconds())
	b.ReportMetric(with.Overall.Seconds()-without.Overall.Seconds(), "nic-cost-s")
}

// BenchmarkAblationWriteAtEnd compares writing after every query (the
// paper's setup, resumable) against writing everything at the end
// (mpiBLAST 1.2 / pioBLAST behaviour).
func BenchmarkAblationWriteAtEnd(b *testing.B) {
	base := ablationConfig()
	for _, strat := range []s3asim.Strategy{s3asim.MW, s3asim.WWList} {
		strat := strat
		b.Run(strat.String(), func(b *testing.B) {
			var perQuery, atEnd *s3asim.Report
			for i := 0; i < b.N; i++ {
				cfg := base
				cfg.Strategy = strat
				cfg.QueriesPerWrite = 1
				perQuery = runCfg(b, cfg)
				cfg.QueriesPerWrite = cfg.Workload.NumQueries
				atEnd = runCfg(b, cfg)
			}
			b.Logf("%s: per-query %.1fs, write-at-end %.1fs",
				strat, perQuery.Overall.Seconds(), atEnd.Overall.Seconds())
			b.ReportMetric(perQuery.Overall.Seconds(), "per-query-s")
			b.ReportMetric(atEnd.Overall.Seconds(), "at-end-s")
		})
	}
}

// BenchmarkAblationFileSync measures the cost of MPI_File_sync after every
// write (always on in the paper's tests).
func BenchmarkAblationFileSync(b *testing.B) {
	base := ablationConfig()
	var with, without *s3asim.Report
	for i := 0; i < b.N; i++ {
		cfg := base
		cfg.Strategy = s3asim.WWList
		cfg.SyncEveryWrite = true
		with = runCfg(b, cfg)
		cfg.SyncEveryWrite = false
		without = runCfg(b, cfg)
	}
	b.Logf("WW-List with file sync: %.1fs; without: %.1fs",
		with.Overall.Seconds(), without.Overall.Seconds())
	b.ReportMetric(with.Overall.Seconds()-without.Overall.Seconds(), "sync-cost-s")
}

// nsTime converts a float64 nanosecond count to the facade Time type.
func nsTime(ns float64) s3asim.Time { return s3asim.Time(ns) }

// BenchmarkAblationFileLocking compares PVFS2's lock-free write path
// against a lock-based file system (GPFS-like block locks) for the
// interleaved, non-overlapping WW write pattern — quantifying §3.1's
// warning that locking "may unnecessarily serialize writes in the I/O
// phase" through false sharing.
func BenchmarkAblationFileLocking(b *testing.B) {
	base := ablationConfig()
	base.Strategy = s3asim.WWList
	var free, locked *s3asim.Report
	for i := 0; i < b.N; i++ {
		cfg := base
		cfg.FS.LockGranularity = 0 // PVFS2: no locks
		free = runCfg(b, cfg)
		cfg.FS.LockGranularity = 1 << 20     // coarse 1 MB block locks
		cfg.FS.LockAcquireCost = nsTime(2e6) // 2 ms lock-manager round trip
		locked = runCfg(b, cfg)
	}
	b.Logf("WW-List lock-free: %.1fs; 1MB block locks: %.1fs",
		free.Overall.Seconds(), locked.Overall.Seconds())
	b.ReportMetric(free.Overall.Seconds(), "lockfree-s")
	b.ReportMetric(locked.Overall.Seconds(), "locked-s")
}
