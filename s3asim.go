// Package s3asim is a Go reproduction of S3aSim, the sequence similarity
// search algorithm simulator of Ching, Feng, Lin, Ma and Choudhary,
// "Exploring I/O Strategies for Parallel Sequence-Search Tools with S3aSim"
// (HPDC 2006).
//
// S3aSim models a database-segmented parallel sequence-search tool
// (mpiBLAST/pioBLAST-like): a master distributes (query, fragment) tasks to
// workers, workers model the search and produce pseudo-random scored
// results, and the merged results are written to a shared output file using
// one of four I/O strategies:
//
//	MW        — the master gathers full results and writes contiguously
//	WW-POSIX  — workers write individually with per-segment POSIX I/O
//	WW-List   — workers write individually with batched list I/O
//	WW-Coll   — workers write collectively with two-phase MPI-IO
//
// Everything the original system ran on is simulated deterministically in
// virtual time: MPI point-to-point and barriers over a Myrinet-like network
// (internal/mpi), a PVFS2-style striped parallel file system (internal/pvfs),
// and a ROMIO-style MPI-IO layer (internal/romio), all above a discrete-event
// kernel (internal/des).
//
// Quick start:
//
//	cfg := s3asim.DefaultConfig()    // paper §3.3 setup, 64 procs, WW-List
//	cfg.Strategy = s3asim.WWColl
//	rep, err := s3asim.Run(cfg)
//	fmt.Println(rep.Overall, rep.WorkerAvg.Phases[s3asim.PhaseIO])
//
// The experiment harnesses reproduce the paper's figures:
//
//	sweep, err := s3asim.RunProcessSweep(s3asim.PaperOptions()) // Fig. 2–4
//	fmt.Println(sweep.OverallTable(false))
package s3asim

import (
	"io"

	"s3asim/internal/causal"
	"s3asim/internal/core"
	"s3asim/internal/des"
	"s3asim/internal/experiments"
	"s3asim/internal/fault"
	"s3asim/internal/mpi"
	"s3asim/internal/obs"
	"s3asim/internal/pvfs"
	"s3asim/internal/romio"
	"s3asim/internal/search"
	"s3asim/internal/serve"
	"s3asim/internal/stats"
	"s3asim/internal/trace"
)

// Time is a virtual-time instant or duration in nanoseconds.
type Time = des.Time

// Strategy selects the result-writing algorithm (paper §2).
type Strategy = core.Strategy

// The four I/O strategies the paper compares.
const (
	MW      = core.MW
	WWPosix = core.WWPosix
	WWList  = core.WWList
	WWColl  = core.WWColl
)

// Strategies lists all strategies in presentation order.
var Strategies = core.Strategies

// ParseStrategy resolves a strategy from its paper name ("MW", "WW-POSIX",
// "WW-List", "WW-Coll").
func ParseStrategy(name string) (Strategy, error) { return core.ParseStrategy(name) }

// Phase is one of the paper's timing phases (§3).
type Phase = core.Phase

// The timing phases, in the paper's order.
const (
	PhaseSetup    = core.PhaseSetup
	PhaseDataDist = core.PhaseDataDist
	PhaseCompute  = core.PhaseCompute
	PhaseMerge    = core.PhaseMerge
	PhaseGather   = core.PhaseGather
	PhaseIO       = core.PhaseIO
	PhaseSync     = core.PhaseSync
	PhaseOther    = core.PhaseOther
	NumPhases     = core.NumPhases
)

// Config describes one simulation run; Report is its outcome.
type (
	Config        = core.Config
	Report        = core.Report
	ProcBreakdown = core.ProcBreakdown
)

// WorkloadSpec describes the simulated search workload (§3.3 input
// parameters); ComputeModel is the search-time model; Workload is a fully
// generated, immutable input.
type (
	WorkloadSpec = search.Spec
	ComputeModel = search.ComputeModel
	Workload     = search.Workload
)

// WorkloadCache memoizes generated workloads by spec content; CacheStats
// reports its hit/miss counters. A sweep generates each distinct workload
// once and shares the immutable result across all cells and goroutines.
type (
	WorkloadCache = search.Cache
	CacheStats    = search.CacheStats
)

// NewWorkloadCache returns an empty concurrency-safe workload cache.
func NewWorkloadCache() *WorkloadCache { return search.NewCache() }

// GenerateWorkload materializes the workload for spec; the same spec always
// yields the same workload.
func GenerateWorkload(spec WorkloadSpec) *Workload { return search.Generate(spec) }

// NetConfig and FSConfig are the interconnect and file-system cost models.
type (
	NetConfig = mpi.NetConfig
	FSConfig  = pvfs.Config
)

// Hints mirrors the MPI-IO hints (ROMIO) relevant to the paper.
type Hints = romio.Hints

// Segmentation selects the parallelization scheme (§1): the paper's
// database segmentation, or the query-segmentation baseline with its
// repeated input I/O.
type Segmentation = core.Segmentation

// The segmentation schemes.
const (
	DatabaseSeg = core.DatabaseSeg
	QuerySeg    = core.QuerySeg
)

// CollMethod selects the collective-write implementation for WW-Coll.
type CollMethod = romio.CollMethod

// The collective-write implementations: ROMIO's default two-phase, and the
// list-I/O-plus-forced-sync collective the paper's conclusion proposes.
const (
	TwoPhase = romio.TwoPhase
	ListSync = romio.ListSync
)

// IOMethod selects an individual (non-collective) ADIO access method —
// used by ROMIO hints and by ReadbackConfig.Method.
type IOMethod = romio.Method

// The individual ADIO methods.
const (
	Posix     = romio.Posix
	ListIO    = romio.ListIO
	DataSieve = romio.DataSieve
)

// BoxHistogram is the paper's piecewise-uniform size distribution input.
type BoxHistogram = stats.BoxHistogram

// DefaultConfig returns the paper's §3.3 test setup (64 processes, WW-List,
// 20 NT-histogram queries over 128 fragments, ≈208 MB of output, 16 PVFS2
// servers with 64 KB strips, sync after every write).
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultWorkload returns the §3.3 workload specification.
func DefaultWorkload() WorkloadSpec { return search.DefaultSpec() }

// NTHistogram returns the NT-database-like sequence size histogram
// (min 6 B, max slightly over 43 MB, mean ≈ 4401 B — paper §3.3).
func NTHistogram() *BoxHistogram { return stats.NTLike() }

// UniformHistogram returns a single-box histogram over [min, max].
func UniformHistogram(min, max int64) *BoxHistogram { return stats.Uniform(min, max) }

// Run executes one simulated S3aSim application run.
func Run(cfg Config) (*Report, error) { return core.Run(cfg) }

// RunWithWorkload executes a run against a pre-generated workload, letting
// callers share one immutable workload across many runs (wl must come from
// cfg.EffectiveWorkload(); see WorkloadCache).
func RunWithWorkload(cfg Config, wl *Workload) (*Report, error) {
	return core.RunWithWorkload(cfg, wl)
}

// IOStats aggregates a file-system request trace (Config.TraceIO).
type IOStats = pvfs.IOStats

// AnalyzeIOTrace summarizes a report's file-system request trace: request
// rates, queueing, size distribution, per-server balance.
func AnalyzeIOTrace(rep *Report) IOStats {
	return pvfs.AnalyzeTrace(rep.IOTrace, len(rep.FS.Servers))
}

// Experiment harness types (paper §4 evaluation suites). Options.Parallelism
// bounds how many sweep cells run concurrently (0 = GOMAXPROCS); the
// resulting SweepResult is bit-identical at every parallelism, and
// SweepResult.Perf (a SweepPerf) records wall-clock, realized speedup, and
// workload-cache outcomes.
type (
	Options     = experiments.Options
	SweepResult = experiments.SweepResult
	Cell        = experiments.Cell
	CellKey     = experiments.CellKey
	SweepPerf   = experiments.SweepPerf
)

// PaperOptions returns the full §4 experiment scale; QuickOptions a reduced
// suite for smoke testing.
func PaperOptions() Options { return experiments.PaperOptions() }

// QuickOptions returns a scaled-down suite that runs in seconds.
func QuickOptions() Options { return experiments.QuickOptions() }

// RunProcessSweep reproduces the process-scalability suite (Figures 2–4).
func RunProcessSweep(opts Options) (*SweepResult, error) {
	return experiments.RunProcessSweep(opts)
}

// RunSpeedSweep reproduces the compute-speed suite (Figures 5–7).
func RunSpeedSweep(opts Options) (*SweepResult, error) {
	return experiments.RunSpeedSweep(opts)
}

// ResumeOutcome is one row of the write-frequency/failure trade-off study.
type ResumeOutcome = experiments.ResumeOutcome

// Table is an aligned-text/CSV result table.
type Table = stats.Table

// CollectiveComparison compares the two collective-write implementations
// (§5 future work): ROMIO two-phase vs list I/O with forced sync. The §5
// studies take an optional trailing parallelism (default GOMAXPROCS).
func CollectiveComparison(base Config, procs []int, parallelism ...int) (*Table, error) {
	return experiments.CollectiveComparison(base, procs, parallelism...)
}

// HybridComparison runs the §5 hybrid query/database segmentation
// extension across group counts.
func HybridComparison(base Config, groups []int, parallelism ...int) (*Table, error) {
	return experiments.HybridComparison(base, groups, parallelism...)
}

// ResumeTradeoff quantifies the §2 write-frequency/failure-recovery
// trade-off: a failure at failFrac of the clean run loses undurable work.
func ResumeTradeoff(base Config, granularities []int, failFrac float64, parallelism ...int) ([]ResumeOutcome, error) {
	return experiments.ResumeTradeoff(base, granularities, failFrac, parallelism...)
}

// ResumeTable renders resume outcomes as a table.
func ResumeTable(outcomes []ResumeOutcome) *Table {
	return experiments.ResumeTable(outcomes)
}

// ServerSweep varies the PVFS2 server count (§4's "larger file system
// configuration" discussion).
func ServerSweep(base Config, servers []int, parallelism ...int) (*Table, error) {
	return experiments.ServerSweep(base, servers, parallelism...)
}

// OutputScaleSweep varies the result volume (§5's "amount of results").
func OutputScaleSweep(base Config, multipliers []float64, parallelism ...int) (*Table, error) {
	return experiments.OutputScaleSweep(base, multipliers, parallelism...)
}

// SegmentationComparison quantifies §1's motivation: database segmentation
// versus the query-segmentation baseline as the database outgrows worker
// memory.
func SegmentationComparison(base Config, dbSizes []int64, parallelism ...int) (*Table, error) {
	return experiments.SegmentationComparison(base, dbSizes, parallelism...)
}

// ScaleConfig is the rank-scaling study configuration: procs total
// processes over a bounded task count, the regime the FSM worker engine
// (DESIGN.md §12) makes affordable at 100k ranks.
func ScaleConfig(procs int) Config { return core.ScaleConfig(procs) }

// ScalePoint is one rank-scaling cell: deterministic virtual-time
// observables plus this host's wall clock and peak sampled memory.
type ScalePoint = experiments.ScalePoint

// ScaleSweep runs ScaleConfig at each rank count. Cells run sequentially
// so the process-wide memory sample means something.
func ScaleSweep(ranks []int) ([]ScalePoint, error) { return experiments.ScaleSweep(ranks) }

// ScaleTable renders a sweep's deterministic virtual-time columns.
func ScaleTable(points []ScalePoint) *Table { return experiments.ScaleTable(points) }

// Fault-injection layer (internal/fault, DESIGN.md §9): a FaultPlan is a
// deterministic schedule of FaultEvents — worker crashes (with optional
// restart), straggler slowdowns, PVFS server outages and degradations, and
// probabilistic message drops/delays on the retry-protected tags. Attach via
// Config.FaultPlan; any non-empty plan (or Config.Resilient) switches the
// run to the self-healing master/worker protocol, and an empty plan leaves
// results bit-identical to the original protocol.
type (
	FaultPlan  = fault.Plan
	FaultEvent = fault.Event
	FaultKind  = fault.Kind
)

// The fault kinds.
const (
	FaultCrash   = fault.Crash
	FaultSlow    = fault.Slow
	FaultOutage  = fault.Outage
	FaultDegrade = fault.Degrade
	FaultDrop    = fault.Drop
	FaultDelay   = fault.Delay
)

// ParseFaultPlan parses the CLI fault-plan grammar
// ("kind[@start][:key=value,...]; ..."), e.g.
// "crash@200ms:rank=3,restart=1s; drop:prob=0.05; outage@1s:server=0,for=500ms".
func ParseFaultPlan(spec string) (*FaultPlan, error) { return fault.Parse(spec) }

// RandomCrashes builds a plan of n seeded worker crashes uniformly over
// [lo, hi); restart > 0 respawns each crashed worker after that delay.
func RandomCrashes(seed int64, n int, workers []int, lo, hi, restart Time) *FaultPlan {
	return fault.RandomCrashes(seed, n, workers, lo, hi, restart)
}

// Chaos suite: the crash-count sweep measuring each strategy's recovery
// cost (time inflation, re-executed tasks, detection latency).
type (
	ChaosOptions = experiments.ChaosOptions
	ChaosResult  = experiments.ChaosResult
	ChaosCell    = experiments.ChaosCell
)

// PaperChaosOptions returns the chaos suite at the paper's evaluation
// scale; QuickChaosOptions a scaled-down suite that runs in seconds.
func PaperChaosOptions() ChaosOptions { return experiments.PaperChaosOptions() }

// QuickChaosOptions returns the reduced chaos suite.
func QuickChaosOptions() ChaosOptions { return experiments.QuickChaosOptions() }

// RunChaosSweep executes the chaos suite: every strategy against the same
// randomized crash schedules, with a fault-free resilient baseline.
func RunChaosSweep(opts ChaosOptions) (*ChaosResult, error) {
	return experiments.RunChaosSweep(opts)
}

// The fault-event phase scopes (FaultEvent.Phase): window faults may declare
// themselves as targeting the write or verified-read I/O phase. phase=read
// plans are only valid on runs with Config.Readback set.
const (
	FaultPhaseAny   = fault.PhaseAny
	FaultPhaseWrite = fault.PhaseWrite
	FaultPhaseRead  = fault.PhaseRead
)

// Verified read path (internal/core/readback.go, DESIGN.md §14): writers
// fill result segments with seeded pseudo-random bytes, and verifiers read
// committed extents back through a real ADIO read strategy, comparing
// content hashes against independently regenerated expected bytes. Attach
// via Config.Readback (requires Config.CaptureData).
type ReadbackConfig = core.ReadbackConfig

// Readback suite: the mixed GET/PUT verification sweep and the
// readback-under-chaos battery (s3abench -suite readback).
type (
	ReadbackOptions      = experiments.ReadbackOptions
	ReadbackResult       = experiments.ReadbackResult
	ReadbackCell         = experiments.ReadbackCell
	ReadbackChaosOptions = experiments.ReadbackChaosOptions
	ReadbackChaosResult  = experiments.ReadbackChaosResult
	ReadbackChaosCell    = experiments.ReadbackChaosCell
	NamedFaultPlan       = experiments.NamedPlan
)

// PaperReadbackOptions returns the mixed GET/PUT readback sweep at the
// paper's evaluation scale; QuickReadbackOptions a scaled-down sweep.
func PaperReadbackOptions() ReadbackOptions { return experiments.PaperReadbackOptions() }

// QuickReadbackOptions returns the reduced readback sweep.
func QuickReadbackOptions() ReadbackOptions { return experiments.QuickReadbackOptions() }

// RunReadbackSweep executes the mixed GET/PUT readback sweep: every durable
// batch is re-read through the configured read strategy at the given GET
// share and content-verified; the post-run pass checks the whole image.
func RunReadbackSweep(opts ReadbackOptions) (*ReadbackResult, error) {
	return experiments.RunReadbackSweep(opts)
}

// PaperReadbackChaosOptions returns the readback-under-chaos battery at the
// paper's scale; QuickReadbackChaosOptions a scaled-down battery.
func PaperReadbackChaosOptions() ReadbackChaosOptions {
	return experiments.PaperReadbackChaosOptions()
}

// QuickReadbackChaosOptions returns the reduced chaos battery.
func QuickReadbackChaosOptions() ReadbackChaosOptions {
	return experiments.QuickReadbackChaosOptions()
}

// RunReadbackChaos re-runs the committed fault plans with end-to-end
// verification on: a returned result certifies zero checksum mismatches.
func RunReadbackChaos(opts ReadbackChaosOptions) (*ReadbackChaosResult, error) {
	return experiments.RunReadbackChaos(opts)
}

// Observability layer (internal/obs): Sink receives phase-timeline events as
// they happen (Config.Sink, Options.CellSink); MetricsRegistry accumulates
// counters, gauges, and virtual-time histograms (Config.Metrics); every
// Report carries a MetricsSnapshot, and a SweepResult carries the merge
// across all of its runs.
type (
	Sink            = obs.Sink
	MetricsRegistry = obs.Registry
	MetricsSnapshot = obs.Snapshot
	HistStat        = obs.HistStat
	StreamSink      = obs.StreamSink
)

// Tracer records a phase timeline in memory; TraceEvent is one interval or
// marker of it. Attach via Config.Tracer, render with TraceGantt or export
// with WritePerfetto.
type (
	Tracer     = trace.Tracer
	TraceEvent = trace.Event
)

// NewTracer returns an empty in-memory timeline tracer.
func NewTracer() *Tracer { return trace.New() }

// NewMetricsRegistry returns an empty concurrency-safe metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewStreamSink returns a sink that spools timeline events to w as JSON
// lines compatible with ReadTrace/s3atrace; call Close to flush.
func NewStreamSink(w io.Writer) *StreamSink { return obs.NewStreamSink(w) }

// MultiSink fans events out to every non-nil sink.
func MultiSink(sinks ...Sink) Sink { return obs.Multi(sinks...) }

// ReadTrace parses a JSON-lines timeline (written by Tracer.WriteJSON or a
// StreamSink).
func ReadTrace(r io.Reader) ([]TraceEvent, error) { return trace.ReadJSON(r) }

// TraceGantt renders timeline events as an ASCII Gantt chart.
func TraceGantt(events []TraceEvent, width int) string { return trace.Gantt(events, width) }

// WritePerfetto exports timeline events as Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WritePerfetto(w io.Writer, events []TraceEvent) error { return obs.WritePerfetto(w, events) }

// Causal-tracing layer (internal/causal, DESIGN.md §10): a CausalRecorder
// passively records happens-before structure alongside a run (Config.Causal,
// Options.CellCausal); the Report then carries an Attribution — the run's
// critical path with every virtual nanosecond attributed to a Category, under
// an exact conservation invariant (categories sum to the overall time).
type (
	CausalRecorder = causal.Recorder
	Attribution    = causal.Attribution
	Breakdown      = causal.Breakdown
	Category       = causal.Category
)

// The attribution categories.
const (
	CatCompute   = causal.CatCompute
	CatMerge     = causal.CatMerge
	CatIOQueue   = causal.CatIOQueue
	CatIOService = causal.CatIOService
	CatTransit   = causal.CatTransit
	CatSyncWait  = causal.CatSyncWait
	CatRecovery  = causal.CatRecovery
	CatOther     = causal.CatOther
)

// NumCategories is the number of attribution categories.
const NumCategories = causal.NumCategories

// CategoryNames returns the stable attribution table headers.
func CategoryNames() []string { return causal.CategoryNames() }

// NewCausalRecorder returns an empty happens-before recorder.
func NewCausalRecorder() *CausalRecorder { return causal.NewRecorder() }

// Explain harness: the strategy × {no-sync, sync} matrix at one process
// count, every run causally traced and critical-path attributed — the data
// behind `s3abench -explain` and `s3asim -explain`.
type (
	ExplainOptions = experiments.ExplainOptions
	ExplainResult  = experiments.ExplainResult
	ExplainRun     = experiments.ExplainRun
)

// RunExplain runs the explain matrix; every attribution returned is
// conservation-checked.
func RunExplain(opts ExplainOptions) (*ExplainResult, error) {
	return experiments.RunExplain(opts)
}

// Serving scenario (DESIGN.md §13): open-loop traffic plans driving the
// engine's serving mode, swept over offered load × strategy with per-query
// lifecycle spans, fixed-memory latency percentiles, SLO accounting, and
// banded tail critical-path attribution — the data behind
// `s3abench -suite serve`.
type (
	// ServePlan switches a single run into serving mode (Config.Serve).
	ServePlan = core.ServePlan
	// ServeAdmission selects the admission-queue discipline.
	ServeAdmission = core.ServeAdmission
	// QueryStat is one query's recorded lifecycle (Report.Queries).
	QueryStat = core.QueryStat
	// TrafficPlan describes seeded per-tenant open-loop traffic.
	TrafficPlan = serve.Plan
	// TrafficTenant is one tenant's arrival stream spec.
	TrafficTenant = serve.Tenant
	// Arrival is one query arrival in a generated schedule.
	Arrival = serve.Arrival
	// ServeOptions configures RunServeSweep.
	ServeOptions = experiments.ServeOptions
	// ServeResult is a completed serving sweep.
	ServeResult = experiments.ServeResult
	// ServeCell is one (strategy, load) outcome.
	ServeCell = experiments.ServeCell
)

// Admission disciplines and arrival processes.
const (
	ServeFIFO = core.ServeFIFO
	ServeSJF  = core.ServeSJF

	Poisson = serve.Poisson
	Bursty  = serve.Bursty
	Diurnal = serve.Diurnal
)

// PaperServeOptions returns the full serving scenario (three tenants over
// four offered loads); QuickServeOptions a scaled-down version that runs in
// seconds.
func PaperServeOptions() ServeOptions { return experiments.PaperServeOptions() }

// QuickServeOptions returns the reduced serving scenario.
func QuickServeOptions() ServeOptions { return experiments.QuickServeOptions() }

// RunServeSweep runs the serving scenario; every per-query tail attribution
// is conservation-checked before returning.
func RunServeSweep(opts ServeOptions) (*ServeResult, error) {
	return experiments.RunServeSweep(opts)
}

// GenerateArrivals expands a traffic plan into its merged arrival schedule.
func GenerateArrivals(p TrafficPlan) ([]Arrival, error) { return p.Generate() }

// Telemetry pipeline (DESIGN.md §15): Config.Telemetry turns the run's
// metrics registry into a windowed time-series over virtual time
// (conservation-checked against the end-of-run snapshot), evaluates
// declarative SLO alert rules at window boundaries, and arms a bounded
// flight recorder that dumps the last few virtual seconds of timeline on
// every alert firing, fault injection, or readback mismatch. Everything is
// deterministic: the same run produces bit-identical series, alert
// timelines, and dump bytes at any sweep parallelism.
type (
	// Telemetry configures the pipeline (window width, rules, flight sizes).
	Telemetry = obs.Telemetry
	// AlertRule is one parsed SLO rule (see ParseAlertRule).
	AlertRule = obs.Rule
	// Alert is one firing or resolution edge in an alert timeline.
	Alert = obs.Alert
	// MetricsSeries is a windowed time-series (Report.Windows).
	MetricsSeries = obs.Series
	// MetricsWindow is one tumbling window of a series.
	MetricsWindow = obs.Window
	// Exemplar is one retained (query ID, value) pair in a histogram bucket.
	Exemplar = obs.Exemplar
	// FlightRecorder is the triggered ring-buffer event recorder.
	FlightRecorder = obs.FlightRecorder
	// FlightDump is one captured dump (Report.FlightDumps).
	FlightDump = obs.FlightDump
)

// ParseAlertRule parses one rule spec: "name:rate(counter)>thr",
// "name:pNN(hist)>thr", or "name:burn(bad/total)>thr:slo=f", each with
// optional ",fast=dur,slow=dur" multiwindow options ("<" inverts).
func ParseAlertRule(spec string) (*AlertRule, error) { return obs.ParseRule(spec) }

// ParseAlertRules parses a list of rule specs.
func ParseAlertRules(specs []string) ([]*AlertRule, error) { return obs.ParseRules(specs) }

// Closed-loop adaptive I/O (DESIGN.md §16): with Config.Adaptive set, the
// master picks each flush batch's write strategy and ROMIO hint vector
// online, from a per-query result-size predictor and an observed per-arm
// cost model seeded by a device-model prior, and hill-climbs cb_nodes and
// the sieve buffer over observation epochs — the machinery behind
// `s3abench -suite adaptive`.
type (
	// AdaptiveConfig switches a run into closed-loop adaptive I/O
	// (Config.Adaptive).
	AdaptiveConfig = core.AdaptiveConfig
	// AdaptiveReport summarizes the controller's run (Report.Adaptive).
	AdaptiveReport = core.AdaptiveReport
	// AdaptiveOptions configures RunAdaptiveSweep.
	AdaptiveOptions = experiments.AdaptiveOptions
	// AdaptiveResult is a completed adaptive sweep.
	AdaptiveResult = experiments.AdaptiveResult
	// AdaptiveRegimeResult is one regime's static-vs-controller comparison.
	AdaptiveRegimeResult = experiments.AdaptiveRegimeResult
	// AdaptiveCellResult is one (regime, policy) outcome.
	AdaptiveCellResult = experiments.AdaptiveCellResult
)

// PaperAdaptiveOptions returns the full adaptive scenario (five regimes at
// the paper's 16-process topology, 96 queries each); QuickAdaptiveOptions
// the same topology at 48 queries, for smoke runs.
func PaperAdaptiveOptions() AdaptiveOptions { return experiments.PaperAdaptiveOptions() }

// QuickAdaptiveOptions returns the reduced adaptive scenario.
func QuickAdaptiveOptions() AdaptiveOptions { return experiments.QuickAdaptiveOptions() }

// RunAdaptiveSweep runs every regime × (static + controller) cell under a
// causal recorder; every attribution is conservation-checked before
// returning.
func RunAdaptiveSweep(opts AdaptiveOptions) (*AdaptiveResult, error) {
	return experiments.RunAdaptiveSweep(opts)
}
