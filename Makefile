# Build/test/race/vet targets for the S3aSim reproduction. `make check`
# is the PR gate: the parallel sweep executor and the workload cache must
# stay race-clean.

GO ?= go

.PHONY: build test short race vet bench bench-quick check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

# The sweep executor, workload cache, engine, and the shared observability
# sinks/registry under concurrent cells.
race:
	$(GO) test -race ./internal/obs/ ./internal/experiments/ ./internal/search/ ./internal/core/

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

bench-quick:
	S3ASIM_BENCH_SCALE=quick $(GO) test -bench=. -benchmem -benchtime=1x

check: build vet test race
