# Build/test/race/vet targets for the S3aSim reproduction. `make check`
# is the PR gate: the parallel sweep executor and the workload cache must
# stay race-clean.

GO ?= go

.PHONY: build test short race fuzz vet bench bench-quick bench-kernel bench-scale bench-readback bench-adaptive bench-diff check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

# The sweep executor, workload cache, engine, fault layer, the serving
# traffic generator, the file-system and ROMIO layers (shared by the
# verified read path), the adaptive controller, and the shared
# observability sinks/registry under concurrent cells.
race:
	$(GO) test -race ./internal/obs/ ./internal/experiments/ ./internal/search/ ./internal/core/ ./internal/fault/ ./internal/causal/ ./internal/serve/ ./internal/pvfs/ ./internal/romio/ ./internal/adapt/

# A short fuzz pass over the chaos-spec parser (longer sessions: raise -fuzztime).
fuzz:
	$(GO) test -fuzz FuzzPlan -fuzztime 30s ./internal/fault/

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

bench-quick:
	S3ASIM_BENCH_SCALE=quick $(GO) test -bench=. -benchmem -benchtime=1x

# Kernel fast-path micro-benchmarks (DESIGN.md §11): calendar throughput,
# process switches, Signal wake/broadcast, timed-wait re-arm, the MPI
# layer riding on them, and the adaptive controller's decision path
# (DESIGN.md §16). The steady-state paths must stay 0 allocs/op.
bench-kernel:
	$(GO) test -bench=. -benchmem -benchtime=1s ./internal/des/ ./internal/mpi/ ./internal/adapt/

# Rank-scaling benchmark (DESIGN.md §12): 1k/10k/100k-rank cells on the
# FSM worker engine, reporting events/sec and peak memory per rank. The
# 100k cell holds a ~1.3 GB heap and takes about a minute.
bench-scale:
	$(GO) test -bench BenchmarkScaleWorkers -benchmem -benchtime=1x -run xxx ./internal/core/

# The verified read path: mixed GET/PUT sweep plus the readback-under-chaos
# battery. Exits nonzero on any checksum mismatch.
bench-readback:
	$(GO) run ./cmd/s3abench -suite readback -quick -quiet -json ""

# Closed-loop adaptive I/O (DESIGN.md §16): the controller against every
# static strategy across five regimes. Exits nonzero if the controller
# loses to the best static anywhere or fails to strictly win a mixed
# regime.
bench-adaptive:
	$(GO) run ./cmd/s3abench -suite adaptive -quick -quiet -json ""

# Quick full-suite run compared against the committed baseline record
# (execution performance only; virtual-time results are deterministic).
# Telemetry is on so the comparison exercises the windowed pipeline the
# baseline was recorded with (DESIGN.md §15).
bench-diff:
	$(GO) run ./cmd/s3abench -suite all -quick -quiet -json "" \
		-window 500ms \
		-slo 'slo-burn:burn(serve.slo_violations/serve.queries)>1.8:slo=0.5,fast=1s,slow=3s' \
		-diff results/BENCH_0007.json

check: build vet test race
