// Benchmarks for the paper's §5 future-work studies, implemented as
// first-class extensions: the improved collective, hybrid segmentation,
// the write-frequency/failure-recovery trade-off, and file-system
// sensitivity sweeps.
//
// Each study shares one workload cache across its runs and fans its
// independent sweep points out across GOMAXPROCS workers (pass an explicit
// trailing parallelism of 1 for sequential timings); tables are identical
// either way.
package s3asim_test

import (
	"testing"

	"s3asim"
)

// BenchmarkExtensionCollectiveImpls compares ROMIO two-phase, the
// list-I/O-plus-forced-sync collective the paper's conclusion proposes,
// and WW-List with query sync, across process counts.
func BenchmarkExtensionCollectiveImpls(b *testing.B) {
	base := ablationConfig()
	var tbl *s3asim.Table
	procs := []int{16, 48}
	if base.Procs < 16 { // quick scale
		procs = []int{4, 8}
	}
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = s3asim.CollectiveComparison(base, procs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tbl.String())
}

// BenchmarkExtensionHybridSegmentation runs the hybrid query/database
// segmentation study for MW (where splitting the master helps most) and
// WW-List.
func BenchmarkExtensionHybridSegmentation(b *testing.B) {
	for _, strat := range []s3asim.Strategy{s3asim.MW, s3asim.WWList} {
		strat := strat
		b.Run(strat.String(), func(b *testing.B) {
			base := ablationConfig()
			base.Strategy = strat
			groups := []int{1, 2, 4}
			var tbl *s3asim.Table
			for i := 0; i < b.N; i++ {
				var err error
				tbl, err = s3asim.HybridComparison(base, groups)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.Log("\n" + tbl.String())
		})
	}
}

// BenchmarkExtensionResumeTradeoff quantifies what per-query writes buy
// when a failure strikes mid-run (§2's resumability motivation).
func BenchmarkExtensionResumeTradeoff(b *testing.B) {
	base := ablationConfig()
	base.Strategy = s3asim.WWList
	grans := []int{1, 5, base.Workload.NumQueries}
	var outcomes []s3asim.ResumeOutcome
	for i := 0; i < b.N; i++ {
		var err error
		outcomes, err = s3asim.ResumeTradeoff(base, grans, 0.5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + s3asim.ResumeTable(outcomes).String())
	if len(outcomes) > 0 {
		first, last := outcomes[0], outcomes[len(outcomes)-1]
		b.ReportMetric(first.TotalWithFail.Seconds(), "per-query-total-s")
		b.ReportMetric(last.TotalWithFail.Seconds(), "at-end-total-s")
	}
}

// BenchmarkExtensionServerScaling sweeps the PVFS2 server count — the
// paper's "larger file system configuration with more I/O bandwidth may
// have provided more scalable I/O performance".
func BenchmarkExtensionServerScaling(b *testing.B) {
	base := ablationConfig()
	base.Strategy = s3asim.WWList
	var tbl *s3asim.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = s3asim.ServerSweep(base, []int{8, 16, 32, 64})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tbl.String())
}

// BenchmarkExtensionSegmentationBaseline quantifies §1's motivation for
// database segmentation: the query-segmentation baseline re-reads the
// database overflow per query once it exceeds worker memory.
func BenchmarkExtensionSegmentationBaseline(b *testing.B) {
	base := ablationConfig()
	base.Strategy = s3asim.WWList
	base.WorkerMemoryBytes = 512 << 20
	sizes := []int64{256 << 20, 1 << 30, 4 << 30}
	var tbl *s3asim.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = s3asim.SegmentationComparison(base, sizes)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tbl.String())
}

// BenchmarkExtensionOutputScaling sweeps the result volume (§5's
// "different I/O characteristics ... amount of results").
func BenchmarkExtensionOutputScaling(b *testing.B) {
	base := ablationConfig()
	base.Strategy = s3asim.WWList
	var tbl *s3asim.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = s3asim.OutputScaleSweep(base, []float64{0.25, 1, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tbl.String())
}
