module s3asim

go 1.22
