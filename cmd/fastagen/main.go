// Command fastagen synthesizes FASTA databases and query sets from size
// histograms — the substitute for downloading the NCBI NT database, whose
// size statistics (min 6 B, max ≈43 MB, mean 4401 B) the paper's workload
// uses.
//
// Usage:
//
//	fastagen -n 1000 -hist nt > db.fasta
//	fastagen -n 20 -hist uniform -min 100 -max 9000 -seed 7 > queries.fasta
package main

import (
	"flag"
	"fmt"
	"os"

	"s3asim/internal/bio"
	"s3asim/internal/stats"
)

func main() {
	var (
		n        = flag.Int("n", 100, "number of sequences")
		hist     = flag.String("hist", "nt", "size histogram: nt, uniform")
		min      = flag.Int64("min", 100, "uniform histogram minimum length")
		max      = flag.Int64("max", 10000, "uniform histogram maximum length")
		alphabet = flag.String("alphabet", "dna", "residue alphabet: dna, protein")
		prefix   = flag.String("prefix", "SYN", "sequence ID prefix")
		seed     = flag.Int64("seed", 1, "generation seed")
		width    = flag.Int("width", 70, "FASTA line width")
		stat     = flag.Bool("stats", false, "print statistics to stderr")
	)
	flag.Parse()

	var h *stats.BoxHistogram
	switch *hist {
	case "nt":
		h = stats.NTLike()
	case "uniform":
		h = stats.Uniform(*min, *max)
	default:
		fatal(fmt.Errorf("unknown histogram %q", *hist))
	}
	alpha := bio.DNAAlphabet
	if *alphabet == "protein" {
		alpha = bio.ProteinAlphabet
	}

	db := bio.Generate(bio.GenSpec{
		NumSeqs:  *n,
		SizeHist: h,
		Alphabet: alpha,
		Prefix:   *prefix,
		Seed:     *seed,
	})
	if err := bio.WriteFASTA(os.Stdout, db.Seqs, *width); err != nil {
		fatal(err)
	}
	if *stat {
		mn, mx, mean := db.Stats()
		fmt.Fprintf(os.Stderr, "fastagen: %d sequences, %d bytes total, min %d max %d mean %.0f\n",
			len(db.Seqs), db.TotalBytes, mn, mx, mean)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fastagen:", err)
	os.Exit(1)
}
