// Command minisearch is a real (non-simulated) miniature parallel
// sequence-search tool in the mpiBLAST family: it segments a FASTA database
// into fragments, searches every query against every fragment with a pool
// of worker goroutines (k-mer seeding + banded Smith-Waterman), merges
// results by score, and writes a TSV results file using either the
// master-writing or the worker-writing strategy — the same structure the
// S3aSim simulator models.
//
// Usage:
//
//	minisearch -db db.fasta[.gz] -queries q.fasta [-out results.tsv]
//	           [-workers 4] [-fragments 16] [-strategy worker-writes]
//	           [-k 8] [-min-score 16]
//
// Generate inputs with fastagen:
//
//	fastagen -n 500 -hist uniform -min 300 -max 3000 -seed 1 > db.fasta
package main

import (
	"flag"
	"fmt"
	"os"

	"s3asim/internal/align"
	"s3asim/internal/bio"
	"s3asim/internal/parsearch"
)

func main() {
	var (
		dbPath    = flag.String("db", "", "FASTA database (.gz supported)")
		qPath     = flag.String("queries", "", "FASTA query set (.gz supported)")
		outPath   = flag.String("out", "results.tsv", "output TSV path")
		workers   = flag.Int("workers", 4, "searcher goroutines")
		fragments = flag.Int("fragments", 16, "database fragments")
		strategy  = flag.String("strategy", "worker-writes", "master-writes or worker-writes")
		k         = flag.Int("k", 8, "seed length")
		minScore  = flag.Int("min-score", 16, "discard hits below this score")
		maxHits   = flag.Int("max-hits", 0, "keep at most this many hits per (query, fragment); 0 = all")
		showAlign = flag.Bool("align", false, "print the best alignment per query (traceback)")
	)
	flag.Parse()
	if *dbPath == "" || *qPath == "" {
		fmt.Fprintln(os.Stderr, "minisearch: -db and -queries are required")
		flag.Usage()
		os.Exit(2)
	}

	dbSeqs, err := bio.ReadFASTAFile(*dbPath)
	if err != nil {
		fatal(err)
	}
	queries, err := bio.ReadFASTAFile(*qPath)
	if err != nil {
		fatal(err)
	}
	db := bio.NewDatabase(dbSeqs)
	min, max, mean := db.Stats()
	fmt.Fprintf(os.Stderr, "database: %d sequences, %d bytes (min %d, mean %.0f, max %d)\n",
		len(db.Seqs), db.TotalBytes, min, mean, max)
	fmt.Fprintf(os.Stderr, "queries:  %d sequences\n", len(queries))

	cfg := parsearch.DefaultConfig()
	cfg.Workers = *workers
	cfg.Fragments = *fragments
	cfg.K = *k
	cfg.Search = align.DefaultSearchOptions()
	cfg.Search.MinScore = *minScore
	cfg.Search.MaxHits = *maxHits
	switch *strategy {
	case "master-writes":
		cfg.Strategy = parsearch.MasterWrites
	case "worker-writes":
		cfg.Strategy = parsearch.WorkerWrites
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	sum, err := parsearch.Run(cfg, db, queries, *outPath)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"%s: %d tasks, %d hits, %d bytes -> %s (index %v, total %v)\n",
		cfg.Strategy, sum.Tasks, sum.Hits, sum.OutputBytes, *outPath,
		sum.Index.Round(1e6), sum.Wall.Round(1e6))

	if *showAlign {
		printAlignments(db, queries, cfg)
	}
}

// printAlignments re-searches each query against a whole-database index and
// prints the traceback of its best hit.
func printAlignments(db *bio.Database, queries []bio.Sequence, cfg parsearch.Config) {
	ix := align.NewIndex(db.Seqs, cfg.K)
	for _, q := range queries {
		hits := ix.Search(q.Data, cfg.Search)
		if len(hits) == 0 {
			fmt.Printf("# %s: no hits\n", q.ID)
			continue
		}
		best := hits[0]
		al := align.LocalAlign(q.Data, db.Seqs[best.SubjectIndex].Data, cfg.Search.Scoring)
		fmt.Printf("# %s vs %s\n%s\n", q.ID, best.SubjectID, al.Pretty(70))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minisearch:", err)
	os.Exit(1)
}
