// Command s3aworkload describes a generated S3aSim workload without running
// a simulation: total output volume, per-query result counts and bytes,
// the (query, fragment) task-size distribution that drives compute-time
// variance, and the compute-model totals at a given speed.
//
// Usage:
//
//	s3aworkload                      # the paper's §3.3 workload
//	s3aworkload -queries 40 -seed 7 -speed 3.2
package main

import (
	"flag"
	"fmt"
	"os"

	"s3asim/internal/des"
	"s3asim/internal/search"
	"s3asim/internal/stats"
)

func main() {
	var (
		queries   = flag.Int("queries", 0, "override query count (0 = paper default)")
		fragments = flag.Int("fragments", 0, "override fragment count")
		seed      = flag.Int64("seed", 0, "override workload seed")
		speed     = flag.Float64("speed", 1, "compute speed for the time totals")
	)
	flag.Parse()

	spec := search.DefaultSpec()
	if *queries > 0 {
		spec.NumQueries = *queries
	}
	if *fragments > 0 {
		spec.NumFragments = *fragments
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	w := search.Generate(spec)
	model := search.DefaultComputeModel()

	fmt.Printf("workload: %d queries x %d fragments, seed %d\n",
		spec.NumQueries, spec.NumFragments, spec.Seed)
	fmt.Printf("output: %.1f MB across %d results\n",
		float64(w.TotalBytes)/1e6, totalResults(w))

	qt := stats.NewTable("per-query", "query", "len (B)", "results", "bytes (MB)",
		"max task (KB)", "compute (s)")
	var taskSizes stats.Online
	var totalCompute des.Time
	for q := range w.Queries {
		qry := &w.Queries[q]
		var qmax int64
		var qCompute des.Time
		for f := 0; f < spec.NumFragments; f++ {
			b := w.TaskBytes(q, f)
			taskSizes.Add(float64(b))
			if b > qmax {
				qmax = b
			}
			qCompute += model.TaskTime(b, *speed)
		}
		totalCompute += qCompute
		qt.AddRowf(q, qry.Length, len(qry.Results),
			float64(qry.Bytes)/1e6, float64(qmax)/1e3, qCompute.Seconds())
	}
	fmt.Println()
	fmt.Print(qt.String())
	fmt.Println()
	fmt.Printf("task sizes: mean %.1f KB, std %.1f KB, max %.1f KB (n=%d)\n",
		taskSizes.Mean()/1e3, taskSizes.Std()/1e3, taskSizes.Max()/1e3, taskSizes.N())
	fmt.Printf("aggregate compute at speed %g: %.1f core-seconds\n",
		*speed, totalCompute.Seconds())
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "s3aworkload: unexpected arguments")
		os.Exit(2)
	}
}

func totalResults(w *search.Workload) int {
	n := 0
	for q := range w.Queries {
		n += len(w.Queries[q].Results)
	}
	return n
}
