// Command s3asim runs a single S3aSim simulation and prints the overall
// execution time, the per-phase decomposition (master and worker-average),
// and file-system statistics.
//
// Usage:
//
//	s3asim [flags]
//
// Examples:
//
//	s3asim -procs 96 -strategy WW-List
//	s3asim -procs 64 -strategy WW-Coll -sync -speed 3.2
//	s3asim -procs 16 -strategy MW -trace trace.jsonl
//	s3asim -procs 16 -fault "crash@200ms:rank=3,restart=1s; drop:prob=0.02" -metrics
//
// A non-empty -fault plan (grammar: "kind[@start][:key=value,...]; ...",
// kinds crash, slow, outage, degrade, drop, delay) or -resilient switches
// the run to the self-healing protocol; -lease, -detect and -retries tune
// its recovery knobs. Invalid flags exit non-zero with a one-line error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"s3asim"
	"s3asim/internal/trace"
)

func main() {
	var (
		procs      = flag.Int("procs", 64, "total MPI processes (1 master + workers)")
		strategy   = flag.String("strategy", "WW-List", "I/O strategy: MW, WW-POSIX, WW-List, WW-Coll")
		sync       = flag.Bool("sync", false, "enable the query-sync option")
		speed      = flag.Float64("speed", 1, "compute speed factor (paper sweeps 0.1..25.6)")
		queries    = flag.Int("queries", 20, "number of input queries")
		fragments  = flag.Int("fragments", 128, "number of database fragments")
		perWrite   = flag.Int("queries-per-write", 1, "flush results every n queries (n=queries writes at end)")
		noFileSync = flag.Bool("no-file-sync", false, "skip MPI_File_sync after writes")
		servers    = flag.Int("servers", 16, "PVFS2 I/O servers")
		seed       = flag.Int64("seed", 0, "workload seed (0 = paper default)")
		tracePath  = flag.String("trace", "", "write a phase timeline (JSON lines) to this file")
		perfetto   = flag.String("perfetto", "", "write the phase timeline as Chrome trace-event JSON (open in ui.perfetto.dev)")
		metrics    = flag.Bool("metrics", false, "print the run's metrics snapshot (counters, histograms)")
		csv        = flag.Bool("csv", false, "print the phase table as CSV")
		explain    = flag.Bool("explain", false, "record causal structure and print the critical-path attribution")
		faultSpec  = flag.String("fault", "", `fault plan, e.g. "crash@200ms:rank=3,restart=1s; drop:prob=0.05"`)
		resilient  = flag.Bool("resilient", false, "use the self-healing protocol even with no faults")
		lease      = flag.Duration("lease", 0, "task/write-ack lease timeout (0 = default)")
		detect     = flag.Duration("detect", 0, "failure-detector sweep period (0 = default)")
		retries    = flag.Int("retries", 0, "per-task re-dispatch bound (0 = default)")
		window     = flag.Duration("window", 0, "telemetry window width (0 disables the windowed time-series)")
		flightDir  = flag.String("flight-dir", "", "write flight-recorder JSONL dumps into this directory (needs -window)")
	)
	var sloSpecs sloFlags
	flag.Var(&sloSpecs, "slo", `telemetry alert rule, repeatable (e.g. "hot:rate(pvfs.requests)>1000"; needs -window)`)
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected argument %q", flag.Arg(0)))
	}

	cfg := s3asim.DefaultConfig()
	cfg.Procs = *procs
	cfg.QuerySync = *sync
	cfg.ComputeSpeed = *speed
	cfg.Workload.NumQueries = *queries
	cfg.Workload.NumFragments = *fragments
	cfg.QueriesPerWrite = *perWrite
	cfg.SyncEveryWrite = !*noFileSync
	cfg.FS.NumServers = *servers
	if *seed != 0 {
		cfg.Workload.Seed = *seed
	}
	var err error
	cfg.Strategy, err = s3asim.ParseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}
	cfg.Resilient = *resilient
	cfg.LeaseTimeout = s3asim.Time(*lease)
	cfg.DetectInterval = s3asim.Time(*detect)
	cfg.MaxTaskRetries = *retries
	if *faultSpec != "" {
		cfg.FaultPlan, err = s3asim.ParseFaultPlan(*faultSpec)
		if err != nil {
			fatal(err)
		}
	}
	if *window > 0 {
		rules, err := s3asim.ParseAlertRules(sloSpecs)
		if err != nil {
			fatal(err)
		}
		cfg.Telemetry = &s3asim.Telemetry{Window: s3asim.Time(*window), Rules: rules}
	} else if len(sloSpecs) > 0 || *flightDir != "" {
		fatal(fmt.Errorf("-slo and -flight-dir need -window"))
	}
	// Validate up front so every bad flag combination dies with one line
	// before any simulation state is built (Run re-validates either way).
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	var tr *trace.Tracer
	if *tracePath != "" || *perfetto != "" {
		tr = trace.New()
		cfg.Tracer = tr
	}
	var rec *s3asim.CausalRecorder
	if *explain {
		rec = s3asim.NewCausalRecorder()
		// With a Perfetto export requested, also record message flows so the
		// timeline gets sender→receiver arrows.
		rec.SetCaptureFlows(*perfetto != "")
		cfg.Causal = rec
	}

	rep, err := s3asim.Run(cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("S3aSim: %s %s, %d processes, compute speed %g\n",
		rep.Strategy, syncWord(rep.QuerySync), rep.Procs, rep.ComputeSpeed)
	fmt.Printf("overall execution time: %.3f s\n", rep.Overall.Seconds())
	fmt.Printf("output: %.1f MB across %d PVFS2 servers (%d requests, %d segments, %d syncs)\n",
		float64(rep.OutputBytes)/1e6, len(rep.FS.Servers),
		rep.FS.TotalRequests, rep.FS.TotalSegments, rep.FS.TotalSyncs)
	fmt.Printf("network: %d messages, %.1f MB\n", rep.Messages, float64(rep.NetBytes)/1e6)
	if *resilient || *faultSpec != "" {
		mc := rep.Metrics.Counters
		fmt.Printf("faults: %d crashes (%d restarts), %d workers declared dead, %d tasks re-executed, %d collective fallbacks\n",
			mc["fault.crashes"], mc["fault.restarts"], mc["fault.workers_detected"],
			mc["fault.tasks_reexecuted"], mc["fault.coll_fallbacks"])
	}
	fmt.Println()
	if *csv {
		fmt.Print(rep.PhaseTable().CSV())
	} else {
		fmt.Print(rep.PhaseTable().String())
	}

	if *explain {
		printAttribution(rep)
	}

	if cfg.Telemetry != nil {
		printTelemetry(rep, *flightDir)
	}

	if *metrics {
		fmt.Printf("\nmetrics:\n%s", rep.Metrics.Render())
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := tr.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\ntrace written to %s (render with s3atrace)\n", *tracePath)
	}
	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			fatal(err)
		}
		events := tr.Events()
		if rec != nil {
			// Message arrows from the causal recorder, rendered as flow
			// events between the phase slices.
			events = append(events, rec.FlowEvents()...)
		}
		if err := s3asim.WritePerfetto(f, events); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nperfetto trace written to %s (open in ui.perfetto.dev)\n", *perfetto)
	}
}

// printAttribution renders the run's critical-path attribution: where every
// virtual nanosecond of the overall time went, by causal category, with the
// conservation check made visible.
func printAttribution(rep *s3asim.Report) {
	att := rep.Attribution
	if att == nil {
		fatal(fmt.Errorf("run produced no attribution"))
	}
	if err := att.Check(); err != nil {
		fatal(err)
	}
	fmt.Printf("\ncritical-path attribution (ends on %s, %d steps):\n", att.EndProc, len(att.Steps))
	shares := att.Shares()
	for c := s3asim.Category(0); c < s3asim.NumCategories; c++ {
		if att.ByCat[c] == 0 {
			continue
		}
		fmt.Printf("  %-11s %10.3fs  %5.1f%%\n", c, att.ByCat[c].Seconds(), 100*shares[c])
	}
	fmt.Printf("  %-11s %10.3fs  100.0%%  (= overall, conservation verified)\n",
		"total", att.Total.Seconds())
}

// printTelemetry renders the run's windowed series, alert timeline, and
// flight dumps (written as JSONL when -flight-dir is set).
func printTelemetry(rep *s3asim.Report, flightDir string) {
	s := rep.Windows
	fired := 0
	for _, a := range rep.Alerts {
		if a.Fired {
			fired++
		}
	}
	fmt.Printf("\ntelemetry: %d windows of %.3fs, %d alerts fired, %d flight dumps\n",
		len(s.Windows), s.Width.Seconds(), fired, len(rep.FlightDumps))
	for _, a := range rep.Alerts {
		event := "resolve"
		if a.Fired {
			event = "fire"
		}
		fmt.Printf("  %.3fs %-7s %s (value %.6g, slow %.6g, threshold %.6g)\n",
			a.At.Seconds(), event, a.Rule, a.Value, a.Slow, a.Threshold)
	}
	fmt.Print(s.Table("windowed telemetry",
		"pvfs.requests", "pvfs.bytes_written", "pvfs.queue_wait", "pvfs.service").String())
	if flightDir == "" {
		return
	}
	if err := os.MkdirAll(flightDir, 0o755); err != nil {
		fatal(err)
	}
	for i := range rep.FlightDumps {
		d := &rep.FlightDumps[i]
		path := filepath.Join(flightDir, fmt.Sprintf("flight_%d.jsonl", d.Seq))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := d.WriteJSONL(f, rep.Windows, rep.Alerts); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("flight dump written to %s (%q at %.3fs)\n", path, d.Reason, d.At.Seconds())
	}
}

// sloFlags collects the repeatable -slo flag.
type sloFlags []string

func (m *sloFlags) String() string     { return strings.Join(*m, ",") }
func (m *sloFlags) Set(v string) error { *m = append(*m, v); return nil }

func syncWord(b bool) string {
	if b {
		return "sync"
	}
	return "no-sync"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s3asim:", err)
	os.Exit(1)
}
