// Command s3atrace renders a phase-timeline trace produced by
// `s3asim -trace` as an ASCII Gantt chart — the stand-in for the
// MPE/Jumpshot visualization the original S3aSim used (paper §3).
//
// Usage:
//
//	s3asim -procs 8 -strategy WW-Coll -trace t.jsonl
//	s3atrace -width 120 t.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"s3asim/internal/trace"
)

func main() {
	width := flag.Int("width", 100, "chart width in columns (ASCII) or pixels (SVG)")
	svgPath := flag.String("svg", "", "write an SVG timeline to this file instead of ASCII")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: s3atrace [-width N] [-svg out.svg] <trace.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	events, err := trace.ReadJSON(f)
	if err != nil {
		fatal(err)
	}
	if *svgPath != "" {
		w := *width
		if w < 300 {
			w = 900
		}
		if err := os.WriteFile(*svgPath, []byte(trace.GanttSVG(events, w, 0)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "wrote", *svgPath)
		return
	}
	fmt.Print(trace.Gantt(events, *width))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s3atrace:", err)
	os.Exit(1)
}
