// Command s3atrace converts a phase-timeline trace produced by
// `s3asim -trace` or a sweep's -trace-dir between formats: the ASCII Gantt
// chart (the stand-in for the MPE/Jumpshot visualization the original S3aSim
// used, paper §3), an SVG timeline, Chrome trace-event JSON loadable in
// Perfetto (ui.perfetto.dev), or normalized JSONL.
//
// Usage:
//
//	s3asim -procs 8 -strategy WW-Coll -trace t.jsonl
//	s3atrace -width 120 t.jsonl                     # ASCII Gantt to stdout
//	s3atrace -format svg -o t.svg t.jsonl
//	s3atrace -format perfetto -o t.json t.jsonl     # open in Perfetto
//	s3atrace -format jsonl t.jsonl                  # re-encode/normalize
//	s3atrace -format folded t.jsonl | flamegraph.pl # collapsed stacks
//
// The folded format aggregates state durations into one "proc;State <ns>"
// line per (process, state) pair — the collapsed-stack input consumed by
// flame-graph tooling, here over virtual nanoseconds instead of samples.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"s3asim/internal/obs"
	"s3asim/internal/trace"
)

func main() {
	width := flag.Int("width", 100, "chart width in columns (ASCII) or pixels (SVG)")
	format := flag.String("format", "ascii", "output format: ascii, svg, perfetto, jsonl, folded")
	outPath := flag.String("o", "", "output file (default stdout)")
	svgPath := flag.String("svg", "", "legacy: write an SVG timeline to this file (same as -format svg -o)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: s3atrace [-format ascii|svg|perfetto|jsonl|folded] [-o out] [-width N] <trace.jsonl>")
		os.Exit(2)
	}
	if *svgPath != "" {
		*format = "svg"
		*outPath = *svgPath
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	events, err := trace.ReadJSON(f)
	if err != nil {
		fatal(err)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := of.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintln(os.Stderr, "wrote", *outPath)
		}()
		out = of
	}

	switch *format {
	case "ascii":
		_, err = io.WriteString(out, trace.Gantt(events, *width))
	case "svg":
		w := *width
		if w < 300 {
			w = 900
		}
		_, err = io.WriteString(out, trace.GanttSVG(events, w, 0))
	case "perfetto":
		err = obs.WritePerfetto(out, events)
	case "jsonl":
		bw := bufio.NewWriter(out)
		enc := json.NewEncoder(bw)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				fatal(err)
			}
		}
		err = bw.Flush()
	case "folded":
		_, err = io.WriteString(out, folded(events))
	default:
		fatal(fmt.Errorf("unknown format %q (want ascii, svg, perfetto, jsonl, or folded)", *format))
	}
	if err != nil {
		fatal(err)
	}
}

// folded renders events as collapsed stacks: total virtual nanoseconds per
// (process, state), one "proc;State <ns>" line, sorted for stable output.
// Point markers and flow arrows carry no duration and are skipped.
func folded(events []trace.Event) string {
	totals := map[string]int64{}
	for _, e := range events {
		if e.Point || e.Flow != "" || e.End <= e.Start {
			continue
		}
		totals[e.Proc+";"+e.Name] += int64(e.End - e.Start)
	}
	keys := make([]string, 0, len(totals))
	for k := range totals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, totals[k])
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s3atrace:", err)
	os.Exit(1)
}
