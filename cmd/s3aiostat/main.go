// Command s3aiostat runs one S3aSim simulation with file-system request
// tracing enabled and prints an I/O analysis: request counts and rates,
// queueing and service times, request-size distribution, and per-server
// load balance — the quantities behind the paper's "I/O ops/s" and "stress
// on the file system" discussions. A per-kind attribution table splits every
// request's lifetime into the causal-tracing categories io-queue and
// io-service (the same names `s3abench -explain` attributes the critical
// path to), so the aggregate view and the path view line up.
//
// Usage:
//
//	s3aiostat -procs 96 -strategy WW-POSIX
//	s3aiostat -procs 96 -strategy WW-List -sync
//	s3aiostat -procs 96 -strategy WW-List -readback 90
//
// -readback N enables the verified read path at a GET share of N percent
// (100 = post-run verification only, 90 = nine in-run re-reads per durable
// batch, 50 = one; see `s3abench -suite readback`). The trace then carries
// "read" requests alongside "write" and "sync", and the attribution table
// reports their io-queue/io-service split and bytes read per kind.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"s3asim"
)

func main() {
	var (
		procs     = flag.Int("procs", 64, "total MPI processes")
		strategy  = flag.String("strategy", "WW-List", "I/O strategy: MW, WW-POSIX, WW-List, WW-Coll")
		sync      = flag.Bool("sync", false, "enable the query-sync option")
		speed     = flag.Float64("speed", 1, "compute speed factor")
		queries   = flag.Int("queries", 20, "number of input queries")
		fragments = flag.Int("fragments", 128, "number of database fragments")
		readback  = flag.Int("readback", 0, "verified-read GET share in percent (0 = off, 100 = post-run only, 90/50 = mixed)")
		window    = flag.Duration("window", 0, "print per-window I/O rates at this telemetry window width (0 disables)")
	)
	flag.Parse()

	cfg := s3asim.DefaultConfig()
	cfg.Procs = *procs
	cfg.QuerySync = *sync
	cfg.ComputeSpeed = *speed
	cfg.Workload.NumQueries = *queries
	cfg.Workload.NumFragments = *fragments
	cfg.TraceIO = true
	var err error
	cfg.Strategy, err = s3asim.ParseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}
	if *readback > 0 {
		if *readback < 50 || *readback > 100 {
			fatal(fmt.Errorf("-readback %d: GET share must be in [50, 100]", *readback))
		}
		rc := &s3asim.ReadbackConfig{Method: s3asim.ListIO, PostRun: true}
		if *readback < 100 {
			rc.InRunReads = *readback / (100 - *readback)
		}
		cfg.CaptureData = true
		cfg.Readback = rc
	}
	if *window > 0 {
		cfg.Telemetry = &s3asim.Telemetry{Window: s3asim.Time(*window)}
	}

	rep, err := s3asim.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s %s, %d procs — overall %.2fs, %.1f MB output\n\n",
		rep.Strategy, syncWord(rep.QuerySync), rep.Procs,
		rep.Overall.Seconds(), float64(rep.OutputBytes)/1e6)
	fmt.Print(s3asim.AnalyzeIOTrace(rep).Render())
	fmt.Print(attribution(rep))
	if rep.Windows != nil {
		// The windowed view of the same trace: request and byte rates plus
		// per-window queue-wait and service-time summaries over virtual time.
		fmt.Println()
		fmt.Print(rep.Windows.Table(
			fmt.Sprintf("Per-window I/O rates (width %.3fs)", rep.Windows.Width.Seconds()),
			"pvfs.requests", "pvfs.bytes_written", "pvfs.queue_wait", "pvfs.service").String())
	}
}

// attribution renders the per-request time split per request kind, using the
// causal categories io-queue (submit→service start) and io-service
// (service start→done) so the totals compare directly with the critical-path
// attribution from `s3abench -explain`.
func attribution(rep *s3asim.Report) string {
	type agg struct {
		n              int
		bytes          int64
		queue, service s3asim.Time
	}
	perKind := map[string]*agg{}
	var total agg
	for _, r := range rep.IOTrace {
		a := perKind[r.Kind]
		if a == nil {
			a = &agg{}
			perKind[r.Kind] = a
		}
		for _, x := range []*agg{a, &total} {
			x.n++
			x.bytes += r.Bytes
			x.queue += r.QueueWait()
			x.service += r.Service()
		}
	}
	if total.n == 0 {
		return ""
	}
	kinds := make([]string, 0, len(perKind))
	for k := range perKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	qName, sName := s3asim.CatIOQueue.String(), s3asim.CatIOService.String()
	out := fmt.Sprintf("\nper-request attribution (causal categories):\n  %-6s  %8s  %10s  %12s  %12s  %12s  %12s\n",
		"kind", "requests", "MB", qName+" (s)", "mean", sName+" (s)", "mean")
	row := func(name string, a agg) string {
		n := s3asim.Time(a.n)
		return fmt.Sprintf("  %-6s  %8d  %10.1f  %12.3f  %12v  %12.3f  %12v\n",
			name, a.n, float64(a.bytes)/1e6,
			a.queue.Seconds(), a.queue/n, a.service.Seconds(), a.service/n)
	}
	for _, k := range kinds {
		out += row(k, *perKind[k])
	}
	out += row("total", total)
	if rep.ReadbackExtents > 0 {
		out += fmt.Sprintf("\nreadback: %d reads over %d extents, %.1f MB verified, %d mismatches\n",
			rep.ReadbackReads, rep.ReadbackExtents,
			float64(rep.ReadbackBytes)/1e6, rep.ReadbackMismatches)
	}
	return out
}

func syncWord(b bool) string {
	if b {
		return "sync"
	}
	return "no-sync"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s3aiostat:", err)
	os.Exit(1)
}
