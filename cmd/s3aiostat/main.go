// Command s3aiostat runs one S3aSim simulation with file-system request
// tracing enabled and prints an I/O analysis: request counts and rates,
// queueing and service times, request-size distribution, and per-server
// load balance — the quantities behind the paper's "I/O ops/s" and "stress
// on the file system" discussions. A per-kind attribution table splits every
// request's lifetime into the causal-tracing categories io-queue and
// io-service (the same names `s3abench -explain` attributes the critical
// path to), so the aggregate view and the path view line up.
//
// Usage:
//
//	s3aiostat -procs 96 -strategy WW-POSIX
//	s3aiostat -procs 96 -strategy WW-List -sync
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"s3asim"
)

func main() {
	var (
		procs     = flag.Int("procs", 64, "total MPI processes")
		strategy  = flag.String("strategy", "WW-List", "I/O strategy: MW, WW-POSIX, WW-List, WW-Coll")
		sync      = flag.Bool("sync", false, "enable the query-sync option")
		speed     = flag.Float64("speed", 1, "compute speed factor")
		queries   = flag.Int("queries", 20, "number of input queries")
		fragments = flag.Int("fragments", 128, "number of database fragments")
	)
	flag.Parse()

	cfg := s3asim.DefaultConfig()
	cfg.Procs = *procs
	cfg.QuerySync = *sync
	cfg.ComputeSpeed = *speed
	cfg.Workload.NumQueries = *queries
	cfg.Workload.NumFragments = *fragments
	cfg.TraceIO = true
	var err error
	cfg.Strategy, err = s3asim.ParseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}

	rep, err := s3asim.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s %s, %d procs — overall %.2fs, %.1f MB output\n\n",
		rep.Strategy, syncWord(rep.QuerySync), rep.Procs,
		rep.Overall.Seconds(), float64(rep.OutputBytes)/1e6)
	fmt.Print(s3asim.AnalyzeIOTrace(rep).Render())
	fmt.Print(attribution(rep))
}

// attribution renders the per-request time split per request kind, using the
// causal categories io-queue (submit→service start) and io-service
// (service start→done) so the totals compare directly with the critical-path
// attribution from `s3abench -explain`.
func attribution(rep *s3asim.Report) string {
	type agg struct {
		n              int
		queue, service s3asim.Time
	}
	perKind := map[string]*agg{}
	var total agg
	for _, r := range rep.IOTrace {
		a := perKind[r.Kind]
		if a == nil {
			a = &agg{}
			perKind[r.Kind] = a
		}
		for _, x := range []*agg{a, &total} {
			x.n++
			x.queue += r.QueueWait()
			x.service += r.Service()
		}
	}
	if total.n == 0 {
		return ""
	}
	kinds := make([]string, 0, len(perKind))
	for k := range perKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	qName, sName := s3asim.CatIOQueue.String(), s3asim.CatIOService.String()
	out := fmt.Sprintf("\nper-request attribution (causal categories):\n  %-6s  %8s  %12s  %12s  %12s  %12s\n",
		"kind", "requests", qName+" (s)", "mean", sName+" (s)", "mean")
	row := func(name string, a agg) string {
		n := s3asim.Time(a.n)
		return fmt.Sprintf("  %-6s  %8d  %12.3f  %12v  %12.3f  %12v\n",
			name, a.n, a.queue.Seconds(), a.queue/n, a.service.Seconds(), a.service/n)
	}
	for _, k := range kinds {
		out += row(k, *perKind[k])
	}
	out += row("total", total)
	return out
}

func syncWord(b bool) string {
	if b {
		return "sync"
	}
	return "no-sync"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s3aiostat:", err)
	os.Exit(1)
}
