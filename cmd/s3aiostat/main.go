// Command s3aiostat runs one S3aSim simulation with file-system request
// tracing enabled and prints an I/O analysis: request counts and rates,
// queueing and service times, request-size distribution, and per-server
// load balance — the quantities behind the paper's "I/O ops/s" and "stress
// on the file system" discussions.
//
// Usage:
//
//	s3aiostat -procs 96 -strategy WW-POSIX
//	s3aiostat -procs 96 -strategy WW-List -sync
package main

import (
	"flag"
	"fmt"
	"os"

	"s3asim"
)

func main() {
	var (
		procs     = flag.Int("procs", 64, "total MPI processes")
		strategy  = flag.String("strategy", "WW-List", "I/O strategy: MW, WW-POSIX, WW-List, WW-Coll")
		sync      = flag.Bool("sync", false, "enable the query-sync option")
		speed     = flag.Float64("speed", 1, "compute speed factor")
		queries   = flag.Int("queries", 20, "number of input queries")
		fragments = flag.Int("fragments", 128, "number of database fragments")
	)
	flag.Parse()

	cfg := s3asim.DefaultConfig()
	cfg.Procs = *procs
	cfg.QuerySync = *sync
	cfg.ComputeSpeed = *speed
	cfg.Workload.NumQueries = *queries
	cfg.Workload.NumFragments = *fragments
	cfg.TraceIO = true
	var err error
	cfg.Strategy, err = s3asim.ParseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}

	rep, err := s3asim.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s %s, %d procs — overall %.2fs, %.1f MB output\n\n",
		rep.Strategy, syncWord(rep.QuerySync), rep.Procs,
		rep.Overall.Seconds(), float64(rep.OutputBytes)/1e6)
	fmt.Print(s3asim.AnalyzeIOTrace(rep).Render())
}

func syncWord(b bool) string {
	if b {
		return "sync"
	}
	return "no-sync"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s3aiostat:", err)
	os.Exit(1)
}
