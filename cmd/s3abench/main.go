// Command s3abench regenerates the paper's evaluation figures: the
// process-scalability suite (Figures 2–4), the compute-speed suite
// (Figures 5–7), and the §4 headline ratios. Output is printed as aligned
// tables (or CSV) — the same rows/series the paper plots.
//
// Usage:
//
//	s3abench [-suite procs|speed|extensions|all] [-quick] [-csv] [-reps N]
//
// The full paper suite takes several minutes; -quick runs a scaled-down
// version in seconds. The extensions suite covers the paper's §5 future
// work: collective implementations, hybrid segmentation, the
// write-frequency/failure trade-off, and file-system sensitivity.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"s3asim"
)

func main() {
	var (
		suite = flag.String("suite", "all", "which suite to run: procs, speed, extensions, all")
		quick = flag.Bool("quick", false, "scaled-down workload and sweep (seconds, not minutes)")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		reps  = flag.Int("reps", 1, "repetitions per data point (paper used 3)")
		quiet = flag.Bool("quiet", false, "suppress per-cell progress")
		chart = flag.Bool("chart", false, "render ASCII charts after the tables")
		figs  = flag.String("figs", "", "write figure SVGs into this directory")
	)
	flag.Parse()
	if *figs != "" {
		if err := os.MkdirAll(*figs, 0o755); err != nil {
			fatal(err)
		}
	}

	opts := s3asim.PaperOptions()
	if *quick {
		opts = s3asim.QuickOptions()
	}
	opts.Repetitions = *reps
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	emit := func(sr *s3asim.SweepResult) {
		for _, tb := range sr.Tables() {
			if *csv {
				fmt.Printf("# %s\n%s\n", tb.Title, tb.CSV())
			} else {
				fmt.Println(tb.String())
			}
		}
		if *chart {
			fmt.Println(sr.OverallChart(false).ASCII(90, 18))
			fmt.Println(sr.OverallChart(true).ASCII(90, 18))
		}
		if *figs != "" {
			writeFigures(*figs, sr)
		}
	}

	if *suite == "procs" || *suite == "all" {
		sr, err := s3asim.RunProcessSweep(opts)
		if err != nil {
			fatal(err)
		}
		emit(sr)
	}
	if *suite == "speed" || *suite == "all" {
		sr, err := s3asim.RunSpeedSweep(opts)
		if err != nil {
			fatal(err)
		}
		emit(sr)
	}
	if *suite == "extensions" || *suite == "all" {
		runExtensions(opts, *csv)
	}
	switch *suite {
	case "procs", "speed", "extensions", "all":
	default:
		fatal(fmt.Errorf("unknown suite %q (want procs, speed, extensions, or all)", *suite))
	}
}

// runExtensions prints the §5 future-work studies.
func runExtensions(opts s3asim.Options, csv bool) {
	base := opts.Base
	base.Procs = opts.SpeedProcs
	show := func(tbl *s3asim.Table, err error) {
		if err != nil {
			fatal(err)
		}
		if csv {
			fmt.Printf("# %s\n%s\n", tbl.Title, tbl.CSV())
		} else {
			fmt.Println(tbl.String())
		}
	}
	procs := []int{base.Procs / 4, base.Procs}
	if procs[0] < 2 {
		procs[0] = 2
	}
	show(s3asim.CollectiveComparison(base, procs))
	hybrid := base
	hybrid.Strategy = s3asim.MW
	show(s3asim.HybridComparison(hybrid, []int{1, 2, 4}))
	outcomes, err := s3asim.ResumeTradeoff(base, []int{1, 5, base.Workload.NumQueries}, 0.5)
	if err != nil {
		fatal(err)
	}
	show(s3asim.ResumeTable(outcomes), nil)
	show(s3asim.ServerSweep(base, []int{8, 16, 32, 64}))
	show(s3asim.OutputScaleSweep(base, []float64{0.25, 1, 4}))
}

// writeFigures renders the sweep as paper-style SVG figures: a line chart
// per sync mode plus a stacked phase chart per strategy and sync mode.
func writeFigures(dir string, sr *s3asim.SweepResult) {
	prefix := map[string]string{"procs": "fig2", "speed": "fig5"}[sr.Kind]
	phasePrefix := map[string]string{"procs": "fig3-4", "speed": "fig6-7"}[sr.Kind]
	save := func(name, content string) {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "wrote", path)
	}
	for _, sync := range []bool{false, true} {
		label := "nosync"
		if sync {
			label = "sync"
		}
		save(fmt.Sprintf("%s-%s.svg", prefix, label),
			sr.OverallChart(sync).SVG(720, 420))
		for _, s := range sr.Strat {
			save(fmt.Sprintf("%s-%s-%s.svg", phasePrefix, slug(s.String()), label),
				sr.PhaseChart(s, sync).SVG(720, 420))
		}
	}
}

func slug(s string) string {
	return strings.ToLower(strings.ReplaceAll(s, "-", ""))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s3abench:", err)
	os.Exit(1)
}
