// Command s3abench regenerates the paper's evaluation figures: the
// process-scalability suite (Figures 2–4), the compute-speed suite
// (Figures 5–7), and the §4 headline ratios. Output is printed as aligned
// tables (or CSV) — the same rows/series the paper plots.
//
// Usage:
//
//	s3abench [-suite procs|speed|figures|extensions|chaos|readback|scale|serve|adaptive|all] [-quick] [-csv]
//	         [-reps N] [-parallel N] [-json dir] [-diff baseline.json]
//	         [-explain] [-trace-dir dir] [-metrics] [-pprof file]
//
// The full paper suite takes several minutes sequentially; every cell of a
// suite is an independent deterministic simulation, so -parallel N (default
// GOMAXPROCS) fans cells out across N workers with bit-identical results,
// and each distinct pseudo-random workload is generated once per suite and
// shared. -quick runs a scaled-down version in seconds. -suite figures is
// the paper's figure pair (procs + speed). The extensions suite covers the
// paper's §5 future work: collective implementations, hybrid segmentation,
// the write-frequency/failure trade-off, and file-system sensitivity. The
// chaos suite sweeps injected worker crashes over the resilient protocol and
// reports each strategy's recovery cost (time inflation, re-executed tasks,
// failure-detection latency). The readback suite runs the verified read
// path: a mixed GET/PUT sweep (every durable batch re-read and checksummed
// at 100/0, 90/10, and 50/50 GET shares) followed by the readback-under-chaos
// battery, which re-runs committed fault plans with end-to-end content
// verification — any checksum mismatch fails the suite, so a clean exit
// certifies zero silent corruption. The scale suite runs the rank-scaling study
// (bounded task count, FSM worker engine) at 1k/10k/100k ranks — 1k/10k
// under -quick — reporting wall time, event throughput, and peak memory
// per rank; its cells run sequentially regardless of -parallel. The serve
// suite runs the open-loop serving scenario (seeded multi-tenant traffic
// over strategy × offered load) and reports latency percentiles from
// fixed-memory histograms, SLO accounting per tenant, throughput against
// offered load, and per-percentile-band tail critical-path attribution. The
// adaptive suite pits the closed-loop controller (per-batch strategy
// selection plus ROMIO hint hill-climbing, DESIGN.md §16) against every
// static strategy across five workload regimes, prints per-regime causal
// diff tables, and enforces the headline in-process: the controller must be
// no worse than the best static strategy anywhere (within the scale's
// documented tolerance) and strictly better on at least one mixed regime —
// a violation exits nonzero.
//
// -explain additionally runs the causal-tracing matrix (every strategy ×
// sync mode at one process count) and prints critical-path attribution
// tables: where every virtual nanosecond of each run's overall time goes
// (compute, io-service, io-queue, sync-wait, merge, transit, recovery), with
// an exact conservation check and a WW-Coll vs WW-List path diff.
//
// Unless -json is empty, a machine-readable record of the run — per-suite
// wall-clock, parallelism, estimated speedup over sequential execution, and
// workload-cache hit/miss counts — is written to <dir>/BENCH_<n>.json
// (n = highest existing index + 1), seeding the repo's performance
// trajectory. -diff compares this run against a previously written record
// (e.g. the committed results/BENCH_0001.json) and prints per-suite deltas.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"s3asim"
)

// suiteRecord is one suite's entry in the JSON output.
type suiteRecord struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	Parallelism int     `json:"parallelism"`
	// CellSeconds sums per-cell wall time — the estimated sequential cost —
	// and Speedup is CellSeconds/WallSeconds. Zero for the extensions suite,
	// which is a bundle of heterogeneous studies.
	CellSeconds float64 `json:"cell_seconds,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
	Cells       int     `json:"cells,omitempty"`
	// MaxConcurrent and Occupancy are the executor's self-profile: the peak
	// number of simulations in flight and the realized pool utilization.
	MaxConcurrent int     `json:"max_concurrent,omitempty"`
	Occupancy     float64 `json:"occupancy,omitempty"`
	CacheHits     uint64  `json:"workload_cache_hits"`
	CacheMisses   uint64  `json:"workload_cache_misses"`
	// Serve carries the serving suite's per-cell telemetry (additive; absent
	// for every other suite).
	Serve []serveCellRecord `json:"serve,omitempty"`
}

// serveCellRecord is one (strategy, load) cell of the serving suite in the
// JSON output: the headline percentiles, throughput, and SLO accounting.
type serveCellRecord struct {
	Strategy   string  `json:"strategy"`
	Load       float64 `json:"load"`
	OfferedQPS float64 `json:"offered_qps"`
	Queries    int     `json:"queries"`
	TputQPS    float64 `json:"tput_qps"`
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	P999Secs   float64 `json:"p999_seconds"`
	Violations int     `json:"slo_violations"`
	// Telemetry counts (present only when -window was set). Like the
	// latency fields these are virtual-time quantities, identical on every
	// machine and at every sweep parallelism.
	Windows     int `json:"windows,omitempty"`
	AlertsFired int `json:"alerts_fired,omitempty"`
	FlightDumps int `json:"flight_dumps,omitempty"`
}

// benchRecord is the top-level JSON document. SchemaVersion guards the
// committed-baseline diff (`make bench-diff`): bump it when a field changes
// meaning, and regenerate the baseline.
type benchRecord struct {
	SchemaVersion int           `json:"schema_version"`
	Timestamp     string        `json:"timestamp"`
	GoMaxProcs    int           `json:"gomaxprocs"`
	Parallelism   int           `json:"parallelism"`
	Quick         bool          `json:"quick"`
	Repetitions   int           `json:"repetitions"`
	Suites        []suiteRecord `json:"suites"`
}

// benchSchemaVersion is the current benchRecord schema.
const benchSchemaVersion = 1

func main() {
	var (
		suite    = flag.String("suite", "all", "which suite to run: procs, speed, figures, extensions, chaos, readback, scale, serve, adaptive, all")
		quick    = flag.Bool("quick", false, "scaled-down workload and sweep (seconds, not minutes)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		reps     = flag.Int("reps", 1, "repetitions per data point (paper used 3)")
		quiet    = flag.Bool("quiet", false, "suppress per-cell progress")
		chart    = flag.Bool("chart", false, "render ASCII charts after the tables")
		figs     = flag.String("figs", "", "write figure SVGs into this directory")
		parallel = flag.Int("parallel", 0, "concurrent simulation cells (0 = GOMAXPROCS, 1 = sequential)")
		jsonDir  = flag.String("json", "results", "write BENCH_<n>.json into this directory (empty disables)")
		diff     = flag.String("diff", "", "compare this run against a previous BENCH_<n>.json record")
		explain  = flag.Bool("explain", false, "run the causal-tracing matrix and print critical-path attribution")
		traceDir = flag.String("trace-dir", "", "write a per-cell phase-timeline JSONL into this directory")
		metrics  = flag.Bool("metrics", false, "print the aggregated metrics snapshot per suite")
		cpuProf  = flag.String("pprof", "", "write a CPU profile of the bench process to this file")
		window   = flag.Duration("window", 0, "telemetry window width for the serve and chaos suites (0 disables the pipeline)")
		flight   = flag.String("flight-dir", "", "write flight-recorder JSONL dumps and the HTML timeline into this directory (needs -window)")
		faultStr = flag.String("fault", "", "performance-fault plan injected into every serve-suite cell (e.g. \"degrade@3s:server=0,factor=50,for=4s\")")
		stratStr = flag.String("strategy", "", "restrict sweeps to these comma-separated strategies (default all four)")
		loadsStr = flag.String("loads", "", "restrict the serve suite to these comma-separated offered-load multipliers")
	)
	var sloSpecs multiFlag
	flag.Var(&sloSpecs, "slo", "telemetry alert rule, repeatable (e.g. \"burn:burn(serve.slo_violations/serve.queries)>1:slo=0.5,fast=1s,slow=2s\"; needs -window)")
	flag.Parse()
	switch *suite {
	case "procs", "speed", "figures", "extensions", "chaos", "readback", "scale", "serve", "adaptive", "all":
	default:
		fatal(fmt.Errorf("unknown suite %q (want procs, speed, figures, extensions, chaos, readback, scale, serve, adaptive, or all)", *suite))
	}
	// "figures" is the paper's figure pair: the process and speed sweeps.
	wantSweep := func(kind string) bool {
		return *suite == kind || *suite == "figures" || *suite == "all"
	}
	if *figs != "" {
		if err := os.MkdirAll(*figs, 0o755); err != nil {
			fatal(err)
		}
	}
	if *jsonDir != "" {
		// Validate up front: a bad -json path should not cost a full run.
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fatal(err)
		}
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fatal(err)
		}
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	var strategies []s3asim.Strategy
	if *stratStr != "" {
		for _, name := range strings.Split(*stratStr, ",") {
			s, err := s3asim.ParseStrategy(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			strategies = append(strategies, s)
		}
	}
	tel := buildTelemetry(*window, sloSpecs)
	if *flight != "" {
		if tel == nil {
			fatal(fmt.Errorf("-flight-dir needs -window"))
		}
		if err := os.MkdirAll(*flight, 0o755); err != nil {
			fatal(err)
		}
	}

	opts := s3asim.PaperOptions()
	if *quick {
		opts = s3asim.QuickOptions()
	}
	opts.Repetitions = *reps
	opts.Parallelism = *parallel
	opts.Strategies = strategies
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	effPar := *parallel
	if effPar <= 0 {
		effPar = runtime.GOMAXPROCS(0)
	}

	record := benchRecord{
		SchemaVersion: benchSchemaVersion,
		Timestamp:     time.Now().Format(time.RFC3339),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Parallelism:   effPar,
		Quick:         *quick,
		Repetitions:   *reps,
	}

	emit := func(sr *s3asim.SweepResult) {
		for _, tb := range sr.Tables() {
			if *csv {
				fmt.Printf("# %s\n%s\n", tb.Title, tb.CSV())
			} else {
				fmt.Println(tb.String())
			}
		}
		if *chart {
			fmt.Println(sr.OverallChart(false).ASCII(90, 18))
			fmt.Println(sr.OverallChart(true).ASCII(90, 18))
		}
		if *figs != "" {
			writeFigures(*figs, sr)
		}
		if *metrics {
			fmt.Printf("# metrics (%s suite, all runs merged)\n%s\n", sr.Kind, sr.Metrics.Render())
		}
		p := sr.Perf
		fmt.Fprintf(os.Stderr,
			"suite %s: %d cells in %.2fs wall at parallelism %d — %.2fx vs sequential (est.), peak %d in flight (occupancy %.0f%%), workload cache %d hits / %d misses\n",
			sr.Kind, len(sr.Cells), p.Elapsed.Seconds(), p.Parallelism,
			p.Speedup(), p.MaxConcurrent, p.Occupancy()*100, p.Workload.Hits, p.Workload.Misses)
		record.Suites = append(record.Suites, suiteRecord{
			Name:          sr.Kind,
			WallSeconds:   p.Elapsed.Seconds(),
			Parallelism:   p.Parallelism,
			CellSeconds:   p.CellTime.Seconds(),
			Speedup:       p.Speedup(),
			Cells:         len(sr.Cells),
			MaxConcurrent: p.MaxConcurrent,
			Occupancy:     p.Occupancy(),
			CacheHits:     p.Workload.Hits,
			CacheMisses:   p.Workload.Misses,
		})
	}

	if wantSweep("procs") {
		spool := newTraceSpool(*traceDir, "procs")
		opts.CellSink = spool.factory()
		sr, err := s3asim.RunProcessSweep(opts)
		spool.close()
		if err != nil {
			fatal(err)
		}
		emit(sr)
	}
	if wantSweep("speed") {
		spool := newTraceSpool(*traceDir, "speed")
		opts.CellSink = spool.factory()
		sr, err := s3asim.RunSpeedSweep(opts)
		spool.close()
		if err != nil {
			fatal(err)
		}
		emit(sr)
	}
	if *suite == "chaos" || *suite == "all" {
		copts := s3asim.PaperChaosOptions()
		if *quick {
			copts = s3asim.QuickChaosOptions()
		}
		copts.Repetitions = *reps
		copts.Parallelism = *parallel
		copts.Progress = opts.Progress
		copts.Strategies = strategies
		copts.Telemetry = tel
		copts.FlightDir = *flight
		cr, err := s3asim.RunChaosSweep(copts)
		if err != nil {
			fatal(err)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", cr.Table().Title, cr.Table().CSV())
		} else {
			fmt.Println(cr.Table().String())
		}
		if tel != nil {
			fired, dumps := 0, 0
			for _, c := range cr.Cells {
				for _, a := range c.Alerts {
					if a.Fired {
						fired++
					}
				}
				dumps += c.Dumps
			}
			if *csv {
				fmt.Printf("# %s\n%s\n", cr.AlertTable().Title, cr.AlertTable().CSV())
			} else {
				fmt.Println(cr.AlertTable().String())
			}
			fmt.Printf("telemetry chaos: %d alerts fired, %d flight dumps\n", fired, dumps)
			writeTimeline(*flight, "chaos_timeline.html", cr.TimelineHTML())
		}
		if *metrics {
			fmt.Printf("# metrics (chaos suite, all runs merged)\n%s\n", cr.Metrics.Render())
		}
		p := cr.Perf
		fmt.Fprintf(os.Stderr,
			"suite chaos: %d cells in %.2fs wall at parallelism %d — %.2fx vs sequential (est.)\n",
			len(cr.Cells), p.Elapsed.Seconds(), p.Parallelism, p.Speedup())
		record.Suites = append(record.Suites, suiteRecord{
			Name:          "chaos",
			WallSeconds:   p.Elapsed.Seconds(),
			Parallelism:   p.Parallelism,
			CellSeconds:   p.CellTime.Seconds(),
			Speedup:       p.Speedup(),
			Cells:         len(cr.Cells),
			MaxConcurrent: p.MaxConcurrent,
			Occupancy:     p.Occupancy(),
			CacheHits:     p.Workload.Hits,
			CacheMisses:   p.Workload.Misses,
		})
	}
	if *suite == "readback" || *suite == "all" {
		// Mixed GET/PUT verification sweep, then the readback-under-chaos
		// battery. Both verify content end to end; a checksum mismatch
		// anywhere fails the suite.
		ropts := s3asim.PaperReadbackOptions()
		if *quick {
			ropts = s3asim.QuickReadbackOptions()
		}
		ropts.Repetitions = *reps
		ropts.Parallelism = *parallel
		ropts.Progress = opts.Progress
		rr, err := s3asim.RunReadbackSweep(ropts)
		if err != nil {
			fatal(err)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", rr.Table().Title, rr.Table().CSV())
		} else {
			fmt.Println(rr.Table().String())
		}
		if *metrics {
			fmt.Printf("# metrics (readback suite, all runs merged)\n%s\n", rr.Metrics.Render())
		}
		p := rr.Perf
		fmt.Fprintf(os.Stderr,
			"suite readback: %d cells in %.2fs wall at parallelism %d — %.2fx vs sequential (est.)\n",
			len(rr.Cells), p.Elapsed.Seconds(), p.Parallelism, p.Speedup())
		record.Suites = append(record.Suites, suiteRecord{
			Name:          "readback",
			WallSeconds:   p.Elapsed.Seconds(),
			Parallelism:   p.Parallelism,
			CellSeconds:   p.CellTime.Seconds(),
			Speedup:       p.Speedup(),
			Cells:         len(rr.Cells),
			MaxConcurrent: p.MaxConcurrent,
			Occupancy:     p.Occupancy(),
			CacheHits:     p.Workload.Hits,
			CacheMisses:   p.Workload.Misses,
		})

		qopts := s3asim.PaperReadbackChaosOptions()
		if *quick {
			qopts = s3asim.QuickReadbackChaosOptions()
		}
		qopts.Repetitions = *reps
		qopts.Parallelism = *parallel
		qopts.Progress = opts.Progress
		cb, err := s3asim.RunReadbackChaos(qopts)
		if err != nil {
			fatal(err)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", cb.Table().Title, cb.Table().CSV())
		} else {
			fmt.Println(cb.Table().String())
		}
		if *metrics {
			fmt.Printf("# metrics (readback-chaos battery, all runs merged)\n%s\n", cb.Metrics.Render())
		}
		p = cb.Perf
		fmt.Fprintf(os.Stderr,
			"suite readback-chaos: %d cells in %.2fs wall at parallelism %d — 0 mismatches\n",
			len(cb.Cells), p.Elapsed.Seconds(), p.Parallelism)
		record.Suites = append(record.Suites, suiteRecord{
			Name:          "readback-chaos",
			WallSeconds:   p.Elapsed.Seconds(),
			Parallelism:   p.Parallelism,
			CellSeconds:   p.CellTime.Seconds(),
			Speedup:       p.Speedup(),
			Cells:         len(cb.Cells),
			MaxConcurrent: p.MaxConcurrent,
			Occupancy:     p.Occupancy(),
			CacheHits:     p.Workload.Hits,
			CacheMisses:   p.Workload.Misses,
		})
	}
	if *suite == "extensions" || *suite == "all" {
		start := time.Now()
		runExtensions(opts, *csv, effPar)
		wall := time.Since(start)
		fmt.Fprintf(os.Stderr, "suite extensions: %.2fs wall at parallelism %d\n",
			wall.Seconds(), effPar)
		record.Suites = append(record.Suites, suiteRecord{
			Name:        "extensions",
			WallSeconds: wall.Seconds(),
			Parallelism: effPar,
		})
	}
	if *suite == "scale" || *suite == "all" {
		// 100k ranks is a gigabyte-class cell; -quick stops at 10k, which
		// still exercises the same protocol-dominated regime.
		ranks := []int{1_000, 10_000, 100_000}
		if *quick {
			ranks = []int{1_000, 10_000}
		}
		start := time.Now()
		points, err := s3asim.ScaleSweep(ranks)
		if err != nil {
			fatal(err)
		}
		wall := time.Since(start)
		tbl := s3asim.ScaleTable(points)
		if *csv {
			fmt.Printf("# %s\n%s\n", tbl.Title, tbl.CSV())
		} else {
			fmt.Println(tbl.String())
		}
		// Host performance goes to stderr, like every suite summary, so
		// stdout stays bit-identical across hosts and -parallel levels.
		for _, p := range points {
			fmt.Fprintf(os.Stderr,
				"suite scale: %d ranks: %d events in %.2fs wall (%.0f events/sec), peak mem %.1f MB (%.0f B/rank)\n",
				p.Ranks, p.Events, p.Wall.Seconds(), p.EventsPerSecond(),
				float64(p.PeakMem)/1e6, p.MemPerRank())
		}
		fmt.Fprintf(os.Stderr, "suite scale: %d cells in %.2fs wall (sequential by design)\n",
			len(ranks), wall.Seconds())
		record.Suites = append(record.Suites, suiteRecord{
			Name:        "scale",
			WallSeconds: wall.Seconds(),
			Parallelism: 1,
			Cells:       len(ranks),
		})
	}
	if *suite == "serve" || *suite == "all" {
		sopts := s3asim.PaperServeOptions()
		if *quick {
			sopts = s3asim.QuickServeOptions()
		}
		sopts.Parallelism = *parallel
		sopts.Strategies = strategies
		if *loadsStr != "" {
			var loads []float64
			for _, f := range strings.Split(*loadsStr, ",") {
				var load float64
				if _, err := fmt.Sscanf(strings.TrimSpace(f), "%g", &load); err != nil || load <= 0 {
					fatal(fmt.Errorf("-loads: bad multiplier %q", f))
				}
				loads = append(loads, load)
			}
			sopts.Loads = loads
		}
		sopts.Telemetry = tel
		sopts.FlightDir = *flight
		if *faultStr != "" {
			plan, err := s3asim.ParseFaultPlan(*faultStr)
			if err != nil {
				fatal(err)
			}
			sopts.Base.FaultPlan = plan
		}
		start := time.Now()
		sres, err := s3asim.RunServeSweep(sopts)
		if err != nil {
			fatal(err)
		}
		wall := time.Since(start)
		for _, tb := range sres.Tables() {
			if *csv {
				fmt.Printf("# %s\n%s\n", tb.Title, tb.CSV())
			} else {
				fmt.Println(tb.String())
			}
		}
		if tel != nil {
			fired, dumps := 0, 0
			for _, c := range sres.Cells {
				for _, a := range c.Alerts {
					if a.Fired {
						fired++
					}
				}
				dumps += len(c.Dumps)
			}
			fmt.Printf("telemetry serve: %d alerts fired, %d flight dumps\n", fired, dumps)
			writeTimeline(*flight, "serve_timeline.html", sres.TimelineHTML())
		}
		queries := 0
		for _, c := range sres.Cells {
			queries += len(c.Queries)
		}
		fmt.Fprintf(os.Stderr,
			"suite serve: %d cells (%d queries) in %.2fs wall at parallelism %d\n",
			len(sres.Cells), queries, wall.Seconds(), effPar)
		srec := suiteRecord{
			Name:        "serve",
			WallSeconds: wall.Seconds(),
			Parallelism: effPar,
			Cells:       len(sres.Cells),
		}
		for _, c := range sres.Cells {
			rec := serveCellRecord{
				Strategy:   c.Strategy.String(),
				Load:       c.Load,
				OfferedQPS: c.OfferedRate,
				Queries:    len(c.Queries),
				TputQPS:    c.Throughput,
				P50Seconds: c.P50.Seconds(),
				P99Seconds: c.P99.Seconds(),
				P999Secs:   c.P999.Seconds(),
				Violations: c.Violations,
			}
			if c.Windows != nil {
				rec.Windows = len(c.Windows.Windows)
				rec.FlightDumps = len(c.Dumps)
				for _, a := range c.Alerts {
					if a.Fired {
						rec.AlertsFired++
					}
				}
			}
			srec.Serve = append(srec.Serve, rec)
		}
		record.Suites = append(record.Suites, srec)
	}
	if *suite == "adaptive" || *suite == "all" {
		aopts := s3asim.PaperAdaptiveOptions()
		if *quick {
			aopts = s3asim.QuickAdaptiveOptions()
		}
		aopts.Parallelism = *parallel
		start := time.Now()
		ares, err := s3asim.RunAdaptiveSweep(aopts)
		if err != nil {
			fatal(err)
		}
		wall := time.Since(start)
		for _, tb := range ares.Tables() {
			if *csv {
				fmt.Printf("# %s\n%s\n", tb.Title, tb.CSV())
			} else {
				fmt.Println(tb.String())
			}
		}
		// The suite's headline: never worse than the best static strategy
		// (beyond the scale's documented tolerance: the 48-query quick scale
		// carries a visible cold-start transient), strictly better somewhere
		// mixed. Failing it is a correctness failure of the controller, not a
		// perf regression.
		tol := 0.02
		if *quick {
			tol = 0.03
		}
		lost, wins := ares.Headline(tol)
		var switches int64
		for _, rr := range ares.Regimes {
			switches += rr.Controller().Switches
		}
		if len(lost) > 0 {
			fatal(fmt.Errorf("adaptive suite: controller lost to the best static beyond %.0f%% on %v",
				100*tol, lost))
		}
		if len(wins) == 0 {
			fatal(fmt.Errorf("adaptive suite: controller strictly won no mixed regime"))
		}
		fmt.Printf("adaptive headline: controller >= best static on all %d regimes (tol %.0f%%), strictly better on %v, %d arm switches\n",
			len(ares.Regimes), 100*tol, wins, switches)
		fmt.Fprintf(os.Stderr,
			"suite adaptive: %d regimes x %d cells in %.2fs wall at parallelism %d\n",
			len(ares.Regimes), len(ares.Regimes)*(len(ares.Strat)+1), wall.Seconds(), effPar)
		record.Suites = append(record.Suites, suiteRecord{
			Name:        "adaptive",
			WallSeconds: wall.Seconds(),
			Parallelism: effPar,
			Cells:       len(ares.Regimes) * (len(ares.Strat) + 1),
		})
	}
	if *explain {
		start := time.Now()
		runExplainMode(opts, *csv, *parallel)
		wall := time.Since(start)
		fmt.Fprintf(os.Stderr, "explain: %.2fs wall at parallelism %d\n", wall.Seconds(), effPar)
		record.Suites = append(record.Suites, suiteRecord{
			Name:        "explain",
			WallSeconds: wall.Seconds(),
			Parallelism: effPar,
		})
	}
	if *jsonDir != "" {
		writeRecord(*jsonDir, record)
	}
	if *diff != "" {
		diffRecord(*diff, record)
	}
}

// runExplainMode runs the causal-tracing matrix at the suite's speed-sweep
// process count and prints the critical-path attribution tables plus the
// query-sync penalty summary (paper Figures 4–9, mechanically).
func runExplainMode(opts s3asim.Options, csv bool, parallel int) {
	er, err := s3asim.RunExplain(s3asim.ExplainOptions{
		Base:        opts.Base,
		Procs:       opts.SpeedProcs,
		Parallelism: parallel,
	})
	if err != nil {
		fatal(err)
	}
	for _, tb := range er.Tables() {
		if csv {
			fmt.Printf("# %s\n%s\n", tb.Title, tb.CSV())
		} else {
			fmt.Println(tb.String())
		}
	}
	fmt.Printf("query-sync penalty (critical-path sync-wait, sync minus no-sync, %d procs):\n", er.Procs)
	for _, s := range s3asim.Strategies {
		fmt.Printf("  %-8s %+.3fms\n", s, 1e3*er.SyncWaitDelta(s).Seconds())
	}
	fmt.Println()
}

// diffRecord compares this run's record against a previously written
// BENCH_<n>.json baseline and prints per-suite wall-clock deltas. Virtual-time
// results are deterministic, so the only thing that legitimately moves here is
// execution performance.
func diffRecord(path string, cur benchRecord) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var base benchRecord
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if base.SchemaVersion != cur.SchemaVersion {
		fatal(fmt.Errorf("%s: schema version %d, this binary writes %d — regenerate the baseline",
			path, base.SchemaVersion, cur.SchemaVersion))
	}
	if base.Quick != cur.Quick || base.Repetitions != cur.Repetitions {
		fmt.Fprintf(os.Stderr, "bench-diff: warning: comparing quick=%v reps=%d against baseline quick=%v reps=%d\n",
			cur.Quick, cur.Repetitions, base.Quick, base.Repetitions)
	}
	byName := map[string]suiteRecord{}
	for _, s := range base.Suites {
		byName[s.Name] = s
	}
	fmt.Printf("bench diff vs %s (recorded %s)\n", path, base.Timestamp)
	fmt.Printf("%-12s  %12s  %12s  %8s\n", "suite", "base wall(s)", "this wall(s)", "ratio")
	for _, s := range cur.Suites {
		b, ok := byName[s.Name]
		if !ok {
			fmt.Printf("%-12s  %12s  %12.2f  %8s\n", s.Name, "-", s.WallSeconds, "new")
			continue
		}
		ratio := "-"
		if b.WallSeconds > 0 {
			ratio = fmt.Sprintf("%.2fx", s.WallSeconds/b.WallSeconds)
		}
		fmt.Printf("%-12s  %12.2f  %12.2f  %8s\n", s.Name, b.WallSeconds, s.WallSeconds, ratio)
		delete(byName, s.Name)
	}
	for name, b := range byName {
		fmt.Printf("%-12s  %12.2f  %12s  %8s\n", name, b.WallSeconds, "-", "gone")
	}
}

// traceSpool opens one streaming JSONL sink per (cell, repetition) run of a
// suite — the per-cell tracing path that, unlike a shared Config.Tracer,
// leaves the sweep free to run cells in parallel. Files are named
// <suite>_<strategy>_<sync|nosync>_x<X>_rep<N>.jsonl; render any of them
// with s3atrace.
type traceSpool struct {
	dir, kind string
	mu        sync.Mutex
	sinks     []*s3asim.StreamSink
	files     []*os.File
}

func newTraceSpool(dir, kind string) *traceSpool {
	return &traceSpool{dir: dir, kind: kind}
}

// factory returns the Options.CellSink hook, or nil when spooling is off.
// It may be invoked from several sweep goroutines at once.
func (ts *traceSpool) factory() func(k s3asim.CellKey, rep int) s3asim.Sink {
	if ts.dir == "" {
		return nil
	}
	return func(k s3asim.CellKey, rep int) s3asim.Sink {
		sync := "nosync"
		if k.QuerySync {
			sync = "sync"
		}
		name := fmt.Sprintf("%s_%s_%s_x%g_rep%d.jsonl",
			ts.kind, slug(k.Strategy.String()), sync, k.X, rep)
		f, err := os.Create(filepath.Join(ts.dir, name))
		if err != nil {
			fatal(err)
		}
		s := s3asim.NewStreamSink(f)
		ts.mu.Lock()
		ts.sinks = append(ts.sinks, s)
		ts.files = append(ts.files, f)
		ts.mu.Unlock()
		return s
	}
}

// close flushes and closes every spooled trace.
func (ts *traceSpool) close() {
	for i, s := range ts.sinks {
		if err := s.Close(); err != nil {
			fatal(err)
		}
		if err := ts.files[i].Close(); err != nil {
			fatal(err)
		}
	}
	if len(ts.files) > 0 {
		fmt.Fprintf(os.Stderr, "wrote %d cell traces to %s\n", len(ts.files), ts.dir)
	}
}

// writeRecord persists the machine-readable benchmark record as the next
// BENCH_<n>.json in dir (highest existing index + 1, so records sort in run
// order and the first one can serve as the committed baseline).
func writeRecord(dir string, record benchRecord) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	next := 1
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			var n int
			if _, err := fmt.Sscanf(e.Name(), "BENCH_%d.json", &n); err == nil && n >= next {
				next = n + 1
			}
		}
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%04d.json", next))
	data, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "wrote", path)
}

// runExtensions prints the §5 future-work studies.
func runExtensions(opts s3asim.Options, csv bool, parallel int) {
	base := opts.Base
	base.Procs = opts.SpeedProcs
	show := func(tbl *s3asim.Table, err error) {
		if err != nil {
			fatal(err)
		}
		if csv {
			fmt.Printf("# %s\n%s\n", tbl.Title, tbl.CSV())
		} else {
			fmt.Println(tbl.String())
		}
	}
	procs := []int{base.Procs / 4, base.Procs}
	if procs[0] < 2 {
		procs[0] = 2
	}
	show(s3asim.CollectiveComparison(base, procs, parallel))
	hybrid := base
	hybrid.Strategy = s3asim.MW
	show(s3asim.HybridComparison(hybrid, []int{1, 2, 4}, parallel))
	outcomes, err := s3asim.ResumeTradeoff(base, []int{1, 5, base.Workload.NumQueries}, 0.5, parallel)
	if err != nil {
		fatal(err)
	}
	show(s3asim.ResumeTable(outcomes), nil)
	show(s3asim.ServerSweep(base, []int{8, 16, 32, 64}, parallel))
	show(s3asim.OutputScaleSweep(base, []float64{0.25, 1, 4}, parallel))
}

// writeFigures renders the sweep as paper-style SVG figures: a line chart
// per sync mode plus a stacked phase chart per strategy and sync mode.
func writeFigures(dir string, sr *s3asim.SweepResult) {
	prefix := map[string]string{"procs": "fig2", "speed": "fig5"}[sr.Kind]
	phasePrefix := map[string]string{"procs": "fig3-4", "speed": "fig6-7"}[sr.Kind]
	save := func(name, content string) {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "wrote", path)
	}
	for _, sync := range []bool{false, true} {
		label := "nosync"
		if sync {
			label = "sync"
		}
		save(fmt.Sprintf("%s-%s.svg", prefix, label),
			sr.OverallChart(sync).SVG(720, 420))
		for _, s := range sr.Strat {
			save(fmt.Sprintf("%s-%s-%s.svg", phasePrefix, slug(s.String()), label),
				sr.PhaseChart(s, sync).SVG(720, 420))
		}
	}
}

// multiFlag collects a repeatable string flag (-slo can be given many times).
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// buildTelemetry assembles the telemetry pipeline config from -window and
// the -slo rules, or nil when -window is absent.
func buildTelemetry(window time.Duration, specs []string) *s3asim.Telemetry {
	if window <= 0 {
		if len(specs) > 0 {
			fatal(fmt.Errorf("-slo needs -window"))
		}
		return nil
	}
	rules, err := s3asim.ParseAlertRules(specs)
	if err != nil {
		fatal(err)
	}
	return &s3asim.Telemetry{Window: s3asim.Time(window), Rules: rules}
}

// writeTimeline saves a sweep's self-contained HTML telemetry page, if both
// the directory and the page exist.
func writeTimeline(dir, name, html string) {
	if dir == "" || html == "" {
		return
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(html), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "wrote", path)
}

func slug(s string) string {
	return strings.ToLower(strings.ReplaceAll(s, "-", ""))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s3abench:", err)
	os.Exit(1)
}
