// Quickstart: run one S3aSim simulation with the paper's §3.3 setup and
// print the overall time and per-phase breakdown.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"s3asim"
)

func main() {
	// The default configuration reproduces the paper's test setup:
	// 64 processes, WW-List strategy, 20 NT-histogram queries over 128
	// database fragments, ≈208 MB of result output to 16 PVFS2 servers,
	// MPI_File_sync after every write.
	cfg := s3asim.DefaultConfig()

	// Shrink the workload so the example runs in about a second; delete
	// these lines to simulate the full paper configuration.
	cfg.Procs = 16
	cfg.Workload.NumQueries = 6
	cfg.Workload.NumFragments = 32

	rep, err := s3asim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("strategy %s, %d processes\n", rep.Strategy, rep.Procs)
	fmt.Printf("overall execution time: %.2f s (virtual)\n", rep.Overall.Seconds())
	fmt.Printf("result data written: %.1f MB, fully covered: %v\n",
		float64(rep.OutputBytes)/1e6, rep.FileCoverage == rep.OutputBytes)
	fmt.Println()
	fmt.Print(rep.PhaseTable())

	// Compare against the master-writing strategy on the same workload.
	cfg.Strategy = s3asim.MW
	mw, err := s3asim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMW on the same workload: %.2f s (%.0f%% slower than WW-List)\n",
		mw.Overall.Seconds(),
		100*(float64(mw.Overall)/float64(rep.Overall)-1))
}
