// Tracing: capture the phase timeline of every simulated process (the
// MPE/Jumpshot-style instrumentation of paper §3) and render it as an
// ASCII Gantt chart. The chart makes the strategies' behaviour visible at
// a glance: WW-Coll workers line up at collective boundaries, MW workers
// idle in data distribution while the master merges and writes.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"log"

	"s3asim"
	"s3asim/internal/trace"
)

func main() {
	for _, strat := range []s3asim.Strategy{s3asim.WWList, s3asim.WWColl} {
		tr := trace.New()
		cfg := s3asim.DefaultConfig()
		cfg.Procs = 6
		cfg.Strategy = strat
		cfg.Workload.NumQueries = 4
		cfg.Workload.NumFragments = 12
		cfg.Workload.MinResults = 80
		cfg.Workload.MaxResults = 120
		cfg.Workload.QueryHist = s3asim.UniformHistogram(500, 5000)
		cfg.Workload.DBSeqHist = s3asim.UniformHistogram(500, 50000)
		cfg.Tracer = tr

		rep, err := s3asim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s — overall %.2fs ===\n", strat, rep.Overall.Seconds())
		fmt.Print(trace.Gantt(tr.Events(), 96))
		fmt.Println()
	}
}
