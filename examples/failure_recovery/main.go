// Failure recovery: quantify what the paper's frequent-write design buys
// (§2: "more frequently writing out the results also allows users to resume
// a failed application run at the appropriate input query").
//
// For several write granularities, a failure is injected halfway through a
// clean run; results not yet durably written are lost and a resumed run
// re-processes them. Frequent writes cost a little on the clean path and
// save a lot on the failure path.
//
//	go run ./examples/failure_recovery
package main

import (
	"fmt"
	"log"
	"os"

	"s3asim"
)

func main() {
	opts := s3asim.QuickOptions()
	cfg := opts.Base
	cfg.Procs = 8
	cfg.Strategy = s3asim.WWList
	cfg.Workload.NumQueries = 8

	fmt.Fprintln(os.Stderr, "injecting a failure at 50% of each clean run...")
	outcomes, err := s3asim.ResumeTradeoff(cfg, []int{1, 2, 4, 8}, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s3asim.ResumeTable(outcomes))

	best := outcomes[0]
	for _, oc := range outcomes[1:] {
		if oc.TotalWithFail < best.TotalWithFail {
			best = oc
		}
	}
	fmt.Printf("best under failure: write every %d queries (%.2fs total; %d queries were durable)\n",
		best.QueriesPerWrite, best.TotalWithFail.Seconds(), best.ResumeFrom)
	fmt.Printf("write-at-end loses everything: %.2fs total\n",
		outcomes[len(outcomes)-1].TotalWithFail.Seconds())
}
