// Real search: the non-simulated counterpart. Build a synthetic FASTA
// database with the NT-like size histogram, segment it into fragments, and
// run a real parallel sequence search (k-mer seeding + banded
// Smith-Waterman) with a worker pool — then write the results file with
// both the master-writing and the worker-writing strategy and check the
// two produce byte-identical output, the same invariant the simulator
// verifies.
//
//	go run ./examples/realsearch
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"s3asim/internal/bio"
	"s3asim/internal/parsearch"
	"s3asim/internal/stats"
)

func main() {
	// Synthetic database: the paper uses NT's size histogram, not its
	// contents; we do the same at reduced scale.
	db := bio.Generate(bio.GenSpec{
		NumSeqs:  400,
		SizeHist: stats.Uniform(300, 3000),
		Seed:     2006,
	})
	fmt.Printf("database: %d sequences, %.1f KB\n", len(db.Seqs), float64(db.TotalBytes)/1e3)

	// Queries are slices of database sequences with a few mutations, so
	// every query has a strong true hit plus chance background hits.
	var queries []bio.Sequence
	for i := 0; i < 12; i++ {
		src := db.Seqs[(i*31)%len(db.Seqs)]
		q := append([]byte(nil), src.Data[:120]...)
		q[30+i] = 'A'
		queries = append(queries, bio.Sequence{ID: fmt.Sprintf("Q%03d", i), Data: q})
	}

	dir, err := os.MkdirTemp("", "realsearch")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	outputs := map[parsearch.Strategy]string{}
	for _, strat := range []parsearch.Strategy{parsearch.MasterWrites, parsearch.WorkerWrites} {
		cfg := parsearch.DefaultConfig()
		cfg.Workers = 4
		cfg.Fragments = 16
		cfg.Strategy = strat
		path := filepath.Join(dir, strat.String()+".tsv")
		sum, err := parsearch.Run(cfg, db, queries, path)
		if err != nil {
			log.Fatal(err)
		}
		outputs[strat] = path
		fmt.Printf("%-14s %4d hits, %6d bytes, indexed in %v, total %v\n",
			strat, sum.Hits, sum.OutputBytes, sum.Index.Round(1e6), sum.Wall.Round(1e6))
	}

	mw, err := os.ReadFile(outputs[parsearch.MasterWrites])
	if err != nil {
		log.Fatal(err)
	}
	ww, err := os.ReadFile(outputs[parsearch.WorkerWrites])
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(mw, ww) {
		log.Fatal("strategies produced different files!")
	}
	fmt.Println("master-writes and worker-writes produced byte-identical output ✓")

	fmt.Println("\nfirst result lines:")
	lines := bytes.Split(mw, []byte("\n"))
	for i := 0; i < 5 && i < len(lines); i++ {
		fmt.Printf("  %s\n", lines[i])
	}
}
