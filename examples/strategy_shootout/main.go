// Strategy shootout: a Figure-2-style comparison of all four I/O
// strategies while scaling the number of processes, in both query-sync
// modes. This is the paper's headline experiment at reduced scale.
//
//	go run ./examples/strategy_shootout
package main

import (
	"fmt"
	"log"
	"os"

	"s3asim"
)

func main() {
	opts := s3asim.QuickOptions()
	// A slightly richer sweep than the test-sized default.
	opts.Procs = []int{2, 4, 8, 16}
	opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  ", line) }

	fmt.Fprintln(os.Stderr, "running the process-scalability suite (reduced workload)...")
	sweep, err := s3asim.RunProcessSweep(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(sweep.OverallTable(false))
	fmt.Println(sweep.OverallTable(true))

	// The paper's §4 headline: how much WW-List outperforms the rest at the
	// largest process count.
	fmt.Println(sweep.HeadlineTable(float64(opts.Procs[len(opts.Procs)-1])))

	// Per-phase decomposition for the two strategies Figure 3 plots.
	fmt.Println(sweep.PhaseTable(s3asim.MW, false))
	fmt.Println(sweep.PhaseTable(s3asim.WWPosix, false))
}
