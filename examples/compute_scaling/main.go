// Compute scaling: a Figure-5-style experiment — hold the process count
// fixed and sweep the compute-speed factor, modeling faster processors,
// FPGA/ASIC search hardware, or smarter heuristics (the paper's motivation
// for why I/O will dominate future sequence-search tools).
//
//	go run ./examples/compute_scaling
package main

import (
	"fmt"
	"log"
	"os"

	"s3asim"
)

func main() {
	opts := s3asim.QuickOptions()
	opts.Speeds = []float64{0.25, 0.5, 1, 2, 4, 8}
	opts.SpeedProcs = 8
	opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  ", line) }

	fmt.Fprintln(os.Stderr, "running the compute-speed suite (reduced workload)...")
	sweep, err := s3asim.RunSpeedSweep(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(sweep.OverallTable(false))

	// The paper's observation: MW barely benefits from faster compute
	// (its master is the bottleneck), while individual worker-writing
	// strategies convert compute speedups into end-to-end speedups.
	slowest, fastest := opts.Speeds[0], opts.Speeds[len(opts.Speeds)-1]
	for _, s := range s3asim.Strategies {
		lo := sweep.Cell(s, false, fastest).Overall.Seconds()
		hi := sweep.Cell(s, false, slowest).Overall.Seconds()
		fmt.Printf("%-9s %6.2fs -> %6.2fs (%.1fx) from compute speed %gx to %gx\n",
			s, hi, lo, hi/lo, slowest, fastest)
	}
}
